// Package verify is the chaos harness's invariant checker: one
// structural observer wired into the channel protocol, the node
// interfaces, and the supervisor, watching a faulted run for the
// promises the system makes even while partitions, gray failures, and
// crashes are in flight:
//
//   - I1, fencing: once a machine incarnation has been superseded (its
//     task migrated away after a confirmed death), no frame it sent may
//     be accepted by the channel layer. On the fenced path netif
//     refuses such frames structurally; the classic silence-trusting
//     path lets them through, which is exactly what the checker
//     demonstrates.
//   - I2, exactly-once + FIFO: per channel direction, deliveries
//     arrive in sequence order, nothing is delivered twice (except the
//     declared replay window after a reincarnation), and a replayed
//     payload is byte-equal to the original.
//   - I3, no acked-but-lost writes: a write whose ack matched the
//     sender's pending window was delivered to the receiving sequencer
//     first, and what was delivered is what was written.
//   - I4, retained-buffer conservation: acknowledged writes enter the
//     retained list exactly once and leave it exactly once (stable
//     release or rebind requeue) — no double-retain, no release of
//     something never retained.
//
// The checker is pure observation: it costs no virtual time, schedules
// nothing, and a run with the checker attached is bit-identical to one
// without. Violations are recorded in event order, so two runs of the
// same seed produce identical reports.
package verify

import (
	"fmt"
	"hash/fnv"
	"io"

	"hpcvorx/internal/core"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

// Violation is one observed invariant breach, in virtual-time order.
type Violation struct {
	At     sim.Time
	Rule   string // "stale-incarnation", "fifo", "double-delivery", ...
	Detail string
}

func (v Violation) String() string {
	return fmt.Sprintf("%10v  %-18s %s", v.At, v.Rule, v.Detail)
}

// dirState tracks one direction of one channel: the writes of one
// (canonical) writer identity and their deliveries at the other end.
type dirState struct {
	expect    int             // next in-order seq the receiver should accept
	delivered map[int]uint64  // seq -> payload fingerprint
	redeliver map[int]bool    // seqs a reincarnation made re-deliverable
	written   map[int]uint64  // seq -> payload fingerprint at the writer
	retained  map[int]bool    // seqs currently on the retained list
}

// Checker implements channels.Verifier, netif.Verifier, and
// super.Verifier over one shared model of the run. Create with New (or
// Attach), wire it into each layer, run the simulation, then read
// Violations.
type Checker struct {
	k    *sim.Kernel
	dirs map[uint64]map[topo.EndpointID]*dirState
	// canon maps a migrated end's new endpoint back to the identity it
	// continues, per channel, so a reincarnated writer's replayed
	// writes land in the same direction state as the originals.
	canon map[uint64]map[topo.EndpointID]topo.EndpointID
	// floors holds per-channel incarnation floors for superseded
	// endpoints: frames from ep stamped below the floor are I1
	// violations if the channel layer accepts them.
	floors map[uint64]map[topo.EndpointID]uint32
	// machFloors holds the supervisor's broadcast fences.
	machFloors map[topo.EndpointID]uint32
	// vchans models the virtualization layer (see vchan.go).
	vchans map[uint64]*vchanState
	// strict flags every duplicate delivery as a violation —
	// zero-fault runs only (see SetStrict).
	strict bool

	viols []Violation

	// Stats.
	Writes         int
	Delivered      int
	Dups           int
	Acked          int
	Retains        int
	Releases       int
	FramesAccepted int
	FramesRefused  int
	Migrations     int
	Fences         int
	// Virtualization-layer stats.
	VWrites    int
	VDelivered int
	VDups      int
	VAcked     int
	VMints     int
	VReplays   int
	VStale     int
}

// New creates a checker clocked by k (violations are stamped with
// virtual time).
func New(k *sim.Kernel) *Checker {
	return &Checker{
		k:          k,
		dirs:       make(map[uint64]map[topo.EndpointID]*dirState),
		canon:      make(map[uint64]map[topo.EndpointID]topo.EndpointID),
		floors:     make(map[uint64]map[topo.EndpointID]uint32),
		machFloors: make(map[topo.EndpointID]uint32),
	}
}

// Attach creates a checker and wires it into every machine's channel
// service and node interface. The supervisor (if any) must be wired
// separately with its SetVerifier — verify cannot import super.
func Attach(sys *core.System) *Checker {
	c := New(sys.K)
	for _, m := range sys.Machines() {
		m.Chans.SetVerifier(c)
		m.IF.SetVerifier(c)
	}
	return c
}

// Violations returns every breach observed so far, in event order.
func (c *Checker) Violations() []Violation { return c.viols }

// Ok reports whether the run has been invariant-clean so far.
func (c *Checker) Ok() bool { return len(c.viols) == 0 }

// Summary is a one-line account of what the checker watched.
func (c *Checker) Summary() string {
	s := fmt.Sprintf("verify: %d violations (%d writes, %d delivered, %d dups, %d acked, "+
		"%d retained/%d released, %d frames ok/%d fenced, %d migrations, %d fences)",
		len(c.viols), c.Writes, c.Delivered, c.Dups, c.Acked,
		c.Retains, c.Releases, c.FramesAccepted, c.FramesRefused, c.Migrations, c.Fences)
	if c.vchans != nil {
		s += fmt.Sprintf(" [vchan: %d writes, %d delivered, %d dups, %d acks, %d terms, %d replays, %d stale-refused]",
			c.VWrites, c.VDelivered, c.VDups, c.VAcked, c.VMints, c.VReplays, c.VStale)
	}
	return s
}

// Report writes the summary and every violation.
func (c *Checker) Report(w io.Writer) {
	fmt.Fprintln(w, c.Summary())
	for _, v := range c.viols {
		fmt.Fprintln(w, " ", v)
	}
}

func (c *Checker) violate(rule, format string, args ...any) {
	c.viols = append(c.viols, Violation{At: c.k.Now(), Rule: rule, Detail: fmt.Sprintf(format, args...)})
}

// canonFor resolves ep to the channel-end identity it continues.
func (c *Checker) canonFor(id uint64, ep topo.EndpointID) topo.EndpointID {
	if m := c.canon[id]; m != nil {
		if orig, ok := m[ep]; ok {
			return orig
		}
	}
	return ep
}

func (c *Checker) dir(id uint64, writer topo.EndpointID) *dirState {
	m := c.dirs[id]
	if m == nil {
		m = make(map[topo.EndpointID]*dirState)
		c.dirs[id] = m
	}
	ds := m[writer]
	if ds == nil {
		ds = &dirState{
			delivered: make(map[int]uint64),
			redeliver: make(map[int]bool),
			written:   make(map[int]uint64),
			retained:  make(map[int]bool),
		}
		m[writer] = ds
	}
	return ds
}

// fingerprint hashes a payload's rendered form. Payloads in the
// simulation are small values with stable formatting, so the
// fingerprint is deterministic across runs.
func fingerprint(payload any) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "%v", payload)
	return h.Sum64()
}

// ---- channels.Verifier ----

// ChanWrite records the write's fingerprint; a reincarnated task that
// regenerates a different payload for the same sequence number breaks
// the Checkpointer replay contract.
func (c *Checker) ChanWrite(id uint64, name string, from topo.EndpointID, inc uint32, seq, size int, payload any) {
	c.Writes++
	ds := c.dir(id, c.canonFor(id, from))
	fp := fingerprint(payload)
	if prev, ok := ds.written[seq]; ok {
		if prev != fp {
			c.violate("replay-divergence", "channel %q seq %d: regenerated write differs from original", name, seq)
		}
		return
	}
	ds.written[seq] = fp
}

// ChanDeliver checks I1 (no superseded incarnation's frame accepted)
// and I2 (FIFO, exactly-once, replay equality).
func (c *Checker) ChanDeliver(id uint64, name string, from topo.EndpointID, inc uint32, seq int, payload any, dup bool) {
	if fl := c.floors[id]; fl != nil {
		if min := fl[from]; min > 0 && inc < min {
			c.violate("stale-incarnation", "channel %q seq %d: frame from superseded ep %d inc %d < floor %d accepted",
				name, seq, from, inc, min)
		}
	}
	ds := c.dir(id, c.canonFor(id, from))
	fp := fingerprint(payload)
	if dup {
		c.Dups++
		if c.strict {
			c.violate("strict-dup", "channel %q seq %d: duplicate frame under zero faults", name, seq)
		}
		prev, ok := ds.delivered[seq]
		switch {
		case !ok:
			c.violate("phantom-dup", "channel %q seq %d: duplicate of a never-delivered message re-acked", name, seq)
		case prev != fp:
			c.violate("payload-divergence", "channel %q seq %d: duplicate differs from original delivery", name, seq)
		}
		return
	}
	c.Delivered++
	if prev, ok := ds.delivered[seq]; ok {
		if !ds.redeliver[seq] {
			c.violate("double-delivery", "channel %q seq %d delivered twice", name, seq)
		} else if prev != fp {
			c.violate("payload-divergence", "channel %q seq %d: replay differs from original delivery", name, seq)
		}
		delete(ds.redeliver, seq)
	}
	if seq != ds.expect {
		c.violate("fifo", "channel %q: delivered seq %d, expected %d", name, seq, ds.expect)
	}
	if seq >= ds.expect {
		ds.expect = seq + 1
	}
	ds.delivered[seq] = fp
	if w, ok := ds.written[seq]; ok && w != fp {
		c.violate("corruption", "channel %q seq %d: delivered payload differs from what was written", name, seq)
	}
}

// ChanAck checks I3: an ack that matched the sender's pending window
// must follow a delivery of that sequence number.
func (c *Checker) ChanAck(id uint64, at topo.EndpointID, seq int) {
	c.Acked++
	ds := c.dir(id, c.canonFor(id, at))
	if _, ok := ds.delivered[seq]; !ok {
		c.violate("acked-but-lost", "channel %d seq %d: write acked but never delivered", id, seq)
	}
}

// ChanRetain checks I4: a write enters the retained list at most once.
func (c *Checker) ChanRetain(id uint64, at topo.EndpointID, seq int) {
	c.Retains++
	ds := c.dir(id, c.canonFor(id, at))
	if ds.retained[seq] {
		c.violate("double-retain", "channel %d seq %d retained twice", id, seq)
	}
	ds.retained[seq] = true
}

// ChanRelease checks I4: only retained writes leave the retained list.
func (c *Checker) ChanRelease(id uint64, at topo.EndpointID, seq int, requeued bool) {
	c.Releases++
	ds := c.dir(id, c.canonFor(id, at))
	if !ds.retained[seq] {
		c.violate("release-unretained", "channel %d seq %d released but was never retained (requeued=%v)",
			id, seq, requeued)
	}
	delete(ds.retained, seq)
}

// ChanReincarnate rolls the peer direction's delivery cursor back to
// the checkpoint mark: the replay window [recvSeq, expect) may be
// delivered once more, byte-identical.
func (c *Checker) ChanReincarnate(id uint64, at, peer topo.EndpointID, sendSeq, recvSeq int) {
	ds := c.dir(id, c.canonFor(id, peer))
	for seq := range ds.delivered {
		if seq >= recvSeq {
			ds.redeliver[seq] = true
		}
	}
	if recvSeq < ds.expect {
		ds.expect = recvSeq
	}
}

// ---- netif.Verifier ----

// FrameAccepted counts fabric-level activity (no invariant: which
// frames a minority-side machine accepts before the fence reaches it
// is the partition's business, not the checker's).
func (c *Checker) FrameAccepted(dst, src topo.EndpointID, inc uint32, service string) {
	c.FramesAccepted++
}

// FrameRefused sanity-checks the fence itself: a refusal must actually
// be below the floor.
func (c *Checker) FrameRefused(dst, src topo.EndpointID, inc, min uint32, service string) {
	c.FramesRefused++
	if inc >= min {
		c.violate("bad-refusal", "ep %d refused a frame from %d at inc %d >= floor %d", dst, src, inc, min)
	}
}

// ---- super.Verifier ----

// MachineFenced records the supervisor's broadcast floor for ep.
func (c *Checker) MachineFenced(ep topo.EndpointID, minInc uint32) {
	c.Fences++
	if c.machFloors[ep] < minInc {
		c.machFloors[ep] = minInc
	}
}

// TaskMigrated installs the I1 floor: frames on ch from staleEP at or
// below staleInc now belong to a superseded incarnation, and aliases
// newEP to the identity it continues.
func (c *Checker) TaskMigrated(ch uint64, staleEP topo.EndpointID, staleInc uint32, newEP topo.EndpointID) {
	c.Migrations++
	fl := c.floors[ch]
	if fl == nil {
		fl = make(map[topo.EndpointID]uint32)
		c.floors[ch] = fl
	}
	if fl[staleEP] < staleInc+1 {
		fl[staleEP] = staleInc + 1
	}
	al := c.canon[ch]
	if al == nil {
		al = make(map[topo.EndpointID]topo.EndpointID)
		c.canon[ch] = al
	}
	al[newEP] = c.canonFor(ch, staleEP)
	// The dead incarnation's retention buffers died with its machine:
	// the reincarnated end starts retaining from scratch, so the same
	// sequence numbers may legitimately enter retention again.
	c.dir(ch, c.canonFor(ch, staleEP)).retained = make(map[int]bool)
}
