// Virtual-channel invariants (PR 7). The checker extends its model
// with per-vchannel state and implements vchan.Verifier:
//
//   - V1, term monotonicity: the balancer's minted terms strictly
//     increase per vchannel; the consumer adopts terms in increasing
//     order and never delivers a frame below its adopted term (a
//     stale delivery is the fencing failure the whole design
//     exists to prevent).
//   - V2, exactly-once + FIFO per vchannel: application deliveries
//     are exactly the sequence 0,1,2,… with no gaps, no repeats, and
//     no rollback — stronger than the channel-layer I2, which allows
//     a declared reincarnation replay window. A vchannel's cursor
//     survives migration, so nothing is ever re-delivered.
//   - V3, cross-term replay window: when a producer replays its
//     retained suffix on a new placement, the replay must start
//     strictly above the acked stable mark (nothing acknowledged is
//     re-sent) and at or below the consumer's cursor +1 (nothing
//     undelivered is skipped) — the drain-to-stable-mark contract.
//   - V4, no acked-but-lost: a cumulative ack covers only delivered
//     sequences.
//
// Strict mode (SetStrict) additionally flags every duplicate frame —
// channel-layer or vchannel — as a violation. Duplicates are legal
// under faults (retransmission is how loss is survived), so strict
// mode is for zero-fault runs, where an observed duplicate means an
// acked write traveled twice: a protocol bug, not a recovery.
package verify

import (
	"hpcvorx/internal/core"
	"hpcvorx/internal/vchan"
)

// vchanState is the checker's model of one vchannel.
type vchanState struct {
	name      string
	nextWrite int            // producer's next sequence
	written   map[int]uint64 // seq -> payload fingerprint
	delivered int            // consumer cursor: next in-order seq
	delivFp   map[int]uint64 // seq -> fingerprint at delivery
	ackHigh   int            // highest cumulative ack processed (-1 none)
	minted    uint32         // last term the balancer minted
	consTerm  uint32         // term the consumer has adopted
	prodTerm  uint32         // term of the producer's last write
}

// AttachVChan wires the checker into a vchan fabric as its protocol
// verifier. Call alongside Attach; the checker then watches both the
// channel layer and the virtualization layer of the same run.
func (c *Checker) AttachVChan(f *vchan.Fabric) {
	f.SetVerifier(c)
}

// AttachAll is Attach plus vchan wiring in one call.
func AttachAll(sys *core.System, f *vchan.Fabric) *Checker {
	c := Attach(sys)
	if f != nil {
		c.AttachVChan(f)
	}
	return c
}

// SetStrict enables zero-fault strict mode: any duplicate delivery,
// channel-layer or vchannel, is flagged. Use only on runs with no
// fault injection.
func (c *Checker) SetStrict(on bool) { c.strict = on }

func (c *Checker) vchanState(v uint64, name string) *vchanState {
	if c.vchans == nil {
		c.vchans = make(map[uint64]*vchanState)
	}
	vs := c.vchans[v]
	if vs == nil {
		vs = &vchanState{
			name:    name,
			written: make(map[int]uint64),
			delivFp: make(map[int]uint64),
			ackHigh: -1,
		}
		c.vchans[v] = vs
	}
	return vs
}

// ---- vchan.Verifier ----

// VChanWrite checks the producer mints a gapless sequence at a
// non-decreasing term.
func (c *Checker) VChanWrite(v uint64, name string, seq, size int, payload any, term uint32) {
	c.VWrites++
	vs := c.vchanState(v, name)
	if seq != vs.nextWrite {
		c.violate("vchan-write-gap", "vchan %q: wrote seq %d, expected %d", name, seq, vs.nextWrite)
	}
	if seq >= vs.nextWrite {
		vs.nextWrite = seq + 1
	}
	if term < vs.prodTerm {
		c.violate("vchan-term-regress", "vchan %q seq %d written at term %d after term %d", name, seq, term, vs.prodTerm)
	}
	vs.prodTerm = term
	vs.written[seq] = fingerprint(payload)
}

// VChanDeliver checks V1 and V2 at the consumer. A non-dup delivery
// must be the cursor's sequence at exactly the consumer's adopted
// term; a dup must re-cover an already-delivered sequence
// byte-identically (and, under strict mode, is itself a violation).
func (c *Checker) VChanDeliver(v uint64, name string, seq int, payload any, term uint32, dup bool) {
	vs := c.vchanState(v, name)
	fp := fingerprint(payload)
	if dup {
		c.VDups++
		if c.strict {
			c.violate("strict-dup", "vchan %q seq %d: duplicate frame under zero faults", name, seq)
		}
		if seq >= vs.delivered {
			c.violate("vchan-phantom-dup", "vchan %q seq %d: suppressed as duplicate but never delivered", name, seq)
		} else if prev, ok := vs.delivFp[seq]; ok && prev != fp {
			c.violate("vchan-payload-divergence", "vchan %q seq %d: duplicate differs from original", name, seq)
		}
		return
	}
	c.VDelivered++
	if term < vs.consTerm {
		c.violate("vchan-stale-delivery", "vchan %q seq %d delivered at stale term %d < adopted %d",
			name, seq, term, vs.consTerm)
	} else if term > vs.consTerm {
		c.violate("vchan-term-skew", "vchan %q seq %d delivered at term %d before the consumer adopted it (at %d)",
			name, seq, term, vs.consTerm)
	}
	if seq != vs.delivered {
		c.violate("vchan-fifo", "vchan %q: delivered seq %d, cursor at %d", name, seq, vs.delivered)
	}
	if _, ok := vs.delivFp[seq]; ok {
		c.violate("vchan-double-delivery", "vchan %q seq %d delivered twice", name, seq)
	}
	if w, ok := vs.written[seq]; ok && w != fp {
		c.violate("vchan-corruption", "vchan %q seq %d: delivered payload differs from written", name, seq)
	}
	vs.delivFp[seq] = fp
	if seq >= vs.delivered {
		vs.delivered = seq + 1
	}
}

// VChanAck checks V4: a cumulative ack covers only delivered
// sequences.
func (c *Checker) VChanAck(v uint64, name string, upTo int) {
	c.VAcked++
	vs := c.vchanState(v, name)
	if upTo >= vs.delivered {
		c.violate("vchan-acked-but-lost", "vchan %q: ack through %d but cursor is %d", name, upTo, vs.delivered)
	}
	if upTo > vs.ackHigh {
		vs.ackHigh = upTo
	}
}

// VChanTermMint checks V1 at the balancer: terms strictly increase.
func (c *Checker) VChanTermMint(v uint64, name string, term uint32) {
	c.VMints++
	vs := c.vchanState(v, name)
	if term <= vs.minted {
		c.violate("vchan-term-mint", "vchan %q: minted term %d after %d", name, term, vs.minted)
	}
	vs.minted = term
}

// VChanExpect checks the consumer adopts terms in increasing order
// and never one the balancer has not minted.
func (c *Checker) VChanExpect(v uint64, name string, term uint32, resume int) {
	vs := c.vchanState(v, name)
	if term <= vs.consTerm {
		c.violate("vchan-expect-regress", "vchan %q: adopted term %d after %d", name, term, vs.consTerm)
	}
	if term > vs.minted {
		c.violate("vchan-unminted-term", "vchan %q: adopted term %d the balancer never minted (last %d)",
			name, term, vs.minted)
	}
	if resume != vs.delivered {
		c.violate("vchan-resume-skew", "vchan %q: term %d adopted with cursor %d, checker saw %d",
			name, term, resume, vs.delivered)
	}
	vs.consTerm = term
}

// VChanReplay checks V3, the cross-term replay window: the retained
// suffix replayed on a new placement starts strictly above the acked
// stable mark and skips nothing undelivered.
func (c *Checker) VChanReplay(v uint64, name string, term uint32, from, to int) {
	c.VReplays++
	vs := c.vchanState(v, name)
	if from <= vs.ackHigh {
		c.violate("vchan-replay-below-ack", "vchan %q term %d: replay from %d at or below acked %d",
			name, term, from, vs.ackHigh)
	}
	if from > vs.delivered {
		c.violate("vchan-replay-gap", "vchan %q term %d: replay from %d skips undelivered %d..%d",
			name, term, from, vs.delivered, from-1)
	}
	if to < from {
		c.violate("vchan-replay-empty", "vchan %q term %d: replay window [%d,%d] inverted", name, term, from, to)
	}
}

// VChanStale sanity-checks the fence: a refusal must actually be
// below the current term.
func (c *Checker) VChanStale(v uint64, where string, term, cur uint32) {
	c.VStale++
	if term >= cur {
		c.violate("vchan-bad-refusal", "vchan %d: %s refused term %d >= current %d", v, where, term, cur)
	}
}
