package verify_test

import (
	"fmt"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vchan"
	"hpcvorx/internal/verify"
)

// The checker is the vchan fabric's protocol observer too.
var _ vchan.Verifier = (*verify.Checker)(nil)

// TestStrictFlagsChannelDup is the regression for the tightened
// exactly-once checker: an acked write delivered twice under zero
// faults was previously only dup-counted; strict mode flags it.
func TestStrictFlagsChannelDup(t *testing.T) {
	c := newChecker()
	c.SetStrict(true)
	c.ChanWrite(chID, "pipe", 3, 1, 0, 64, "x")
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "x", false)
	c.ChanAck(chID, 3, 0)
	// The same frame arrives again: the receiver suppresses and
	// re-acks it (dup=true). With no faults injected there is no
	// legitimate source of duplicates.
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "x", true)
	wantRules(t, c, "strict-dup")
}

// TestStrictOffAllowsDup proves the default is unchanged: the same
// sequence trips nothing without strict mode.
func TestStrictOffAllowsDup(t *testing.T) {
	c := newChecker()
	c.ChanWrite(chID, "pipe", 3, 1, 0, 64, "x")
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "x", false)
	c.ChanAck(chID, 3, 0)
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "x", true)
	if !c.Ok() {
		t.Fatalf("non-strict checker flagged a legitimate dup: %v", c.Violations())
	}
	if c.Dups != 1 {
		t.Fatalf("Dups = %d, want 1", c.Dups)
	}
}

// TestStrictFlagsVChanDup: same contract at the virtualization layer.
func TestStrictFlagsVChanDup(t *testing.T) {
	c := newChecker()
	c.SetStrict(true)
	c.VChanTermMint(9, "t0", 1)
	c.VChanExpect(9, "t0", 1, 0)
	c.VChanWrite(9, "t0", 0, 64, "x", 1)
	c.VChanDeliver(9, "t0", 0, "x", 1, false)
	c.VChanAck(9, "t0", 0)
	c.VChanDeliver(9, "t0", 0, "x", 1, true)
	wantRules(t, c, "strict-dup")
}

// TestStrictCleanRun: a full fault-free simulation with the strict
// checker attached to both layers must stay silent — strict mode has
// no false positives on the happy path.
func TestStrictCleanRun(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 8, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	fab := vchan.Enable(sys, vchan.Config{BrokerCount: 2})
	type pair struct{ p, c int }
	pairs := []pair{{0, 1}, {2, 3}, {4, 5}}
	for i, pr := range pairs {
		fab.Declare(fmt.Sprintf("t%d", i), sys.Node(pr.p), sys.Node(pr.c))
	}
	chk := verify.AttachAll(sys, fab)
	chk.SetStrict(true)
	fab.Start()
	const msgs = 25
	for i, pr := range pairs {
		name := fmt.Sprintf("t%d", i)
		prod, cons := sys.Node(pr.p), sys.Node(pr.c)
		sys.Spawn(prod, "w/"+name, 1, func(sp *kern.Subprocess) {
			w := fab.On(prod).OpenWriter(sp, name)
			for k := 0; k < msgs; k++ {
				if err := w.Write(sp, 64, k); err != nil {
					return
				}
				sp.SleepFor(40 * sim.Microsecond)
			}
		})
		sys.Spawn(cons, "r/"+name, 1, func(sp *kern.Subprocess) {
			r := fab.On(cons).OpenReader(sp, name)
			for k := 0; k < msgs; k++ {
				if _, err := r.Read(sp); err != nil {
					return
				}
			}
		})
	}
	sys.RunFor(60 * sim.Millisecond)
	if !chk.Ok() {
		t.Fatalf("strict checker flagged a clean run:\n%v", chk.Violations())
	}
	if chk.VDelivered != msgs*len(pairs) {
		t.Fatalf("VDelivered = %d, want %d", chk.VDelivered, msgs*len(pairs))
	}
}

// TestVChanInvariantRules drives the vchan hooks directly through
// every violation branch.
func TestVChanInvariantRules(t *testing.T) {
	t.Run("stale-delivery", func(t *testing.T) {
		c := newChecker()
		c.VChanTermMint(9, "t", 1)
		c.VChanExpect(9, "t", 1, 0)
		c.VChanTermMint(9, "t", 2)
		c.VChanExpect(9, "t", 2, 0)
		c.VChanWrite(9, "t", 0, 8, "x", 1)
		c.VChanDeliver(9, "t", 0, "x", 1, false) // term 1 after adopting 2
		wantRules(t, c, "vchan-stale-delivery")
	})
	t.Run("term-mint-regress", func(t *testing.T) {
		c := newChecker()
		c.VChanTermMint(9, "t", 2)
		c.VChanTermMint(9, "t", 2)
		wantRules(t, c, "vchan-term-mint")
	})
	t.Run("fifo-and-double", func(t *testing.T) {
		c := newChecker()
		c.VChanTermMint(9, "t", 1)
		c.VChanExpect(9, "t", 1, 0)
		c.VChanWrite(9, "t", 0, 8, "a", 1)
		c.VChanWrite(9, "t", 1, 8, "b", 1)
		c.VChanDeliver(9, "t", 1, "b", 1, false) // skips seq 0
		wantRules(t, c, "vchan-fifo")
	})
	t.Run("replay-below-ack", func(t *testing.T) {
		c := newChecker()
		c.VChanTermMint(9, "t", 1)
		c.VChanExpect(9, "t", 1, 0)
		c.VChanWrite(9, "t", 0, 8, "a", 1)
		c.VChanDeliver(9, "t", 0, "a", 1, false)
		c.VChanAck(9, "t", 0)
		c.VChanTermMint(9, "t", 2)
		c.VChanReplay(9, "t", 2, 0, 0) // replays the acked seq 0
		wantRules(t, c, "vchan-replay-below-ack")
	})
	t.Run("replay-gap", func(t *testing.T) {
		c := newChecker()
		c.VChanTermMint(9, "t", 1)
		c.VChanExpect(9, "t", 1, 0)
		c.VChanWrite(9, "t", 0, 8, "a", 1)
		c.VChanTermMint(9, "t", 2)
		c.VChanReplay(9, "t", 2, 1, 1) // skips undelivered seq 0
		wantRules(t, c, "vchan-replay-gap")
	})
	t.Run("acked-but-lost", func(t *testing.T) {
		c := newChecker()
		c.VChanTermMint(9, "t", 1)
		c.VChanExpect(9, "t", 1, 0)
		c.VChanWrite(9, "t", 0, 8, "a", 1)
		c.VChanAck(9, "t", 0) // nothing delivered yet
		wantRules(t, c, "vchan-acked-but-lost")
	})
	t.Run("bad-refusal", func(t *testing.T) {
		c := newChecker()
		c.VChanStale(9, "broker", 3, 3) // refused a current-term frame
		wantRules(t, c, "vchan-bad-refusal")
	})
}
