package verify_test

import (
	"strings"
	"testing"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/super"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/verify"
)

// The checker must satisfy every layer's observer interface — this is
// the compile-time contract that Attach and SetVerifier rely on.
var (
	_ channels.Verifier = (*verify.Checker)(nil)
	_ netif.Verifier    = (*verify.Checker)(nil)
	_ super.Verifier    = (*verify.Checker)(nil)
)

const chID = 65537

func newChecker() *verify.Checker {
	return verify.New(sim.NewKernel(1))
}

// rules extracts the violated rule names in event order.
func rules(c *verify.Checker) []string {
	var rs []string
	for _, v := range c.Violations() {
		rs = append(rs, v.Rule)
	}
	return rs
}

func wantRules(t *testing.T, c *verify.Checker, want ...string) {
	t.Helper()
	got := rules(c)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Fatalf("violations = %v, want %v\n%v", got, want, c.Violations())
	}
}

// TestCleanStream: the happy path — in-order writes, deliveries, acks,
// retention and stable release — trips nothing.
func TestCleanStream(t *testing.T) {
	c := newChecker()
	var w, r topo.EndpointID = 3, 7
	for seq := 0; seq < 4; seq++ {
		c.ChanWrite(chID, "pipe", w, 1, seq, 64, seq)
		c.ChanDeliver(chID, "pipe", w, 1, seq, seq, false)
		c.ChanAck(chID, w, seq)
		c.ChanRetain(chID, w, seq)
	}
	for seq := 0; seq < 4; seq++ {
		c.ChanRelease(chID, w, seq, false)
	}
	if !c.Ok() {
		t.Fatalf("clean stream flagged: %v", c.Violations())
	}
	if c.Writes != 4 || c.Delivered != 4 || c.Acked != 4 || c.Retains != 4 || c.Releases != 4 {
		t.Fatalf("stats off: %s", c.Summary())
	}
	_ = r
}

func TestFIFOViolation(t *testing.T) {
	c := newChecker()
	c.ChanDeliver(chID, "pipe", 3, 1, 1, "m1", false)
	wantRules(t, c, "fifo")
}

func TestDoubleDelivery(t *testing.T) {
	c := newChecker()
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "m0", false)
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "m0", false)
	wantRules(t, c, "double-delivery", "fifo")
}

func TestPhantomDup(t *testing.T) {
	c := newChecker()
	c.ChanDeliver(chID, "pipe", 3, 1, 5, "m5", true)
	wantRules(t, c, "phantom-dup")
}

func TestDupPayloadDivergence(t *testing.T) {
	c := newChecker()
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "m0", false)
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "MUTATED", true)
	wantRules(t, c, "payload-divergence")
}

func TestCorruption(t *testing.T) {
	c := newChecker()
	c.ChanWrite(chID, "pipe", 3, 1, 0, 64, "m0")
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "GARBLED", false)
	wantRules(t, c, "corruption")
}

func TestAckedButLost(t *testing.T) {
	c := newChecker()
	c.ChanWrite(chID, "pipe", 3, 1, 0, 64, "m0")
	c.ChanAck(chID, 3, 0)
	wantRules(t, c, "acked-but-lost")
}

func TestRetainConservation(t *testing.T) {
	c := newChecker()
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "m0", false)
	c.ChanRetain(chID, 3, 0)
	c.ChanRetain(chID, 3, 0)
	c.ChanRelease(chID, 3, 0, false)
	c.ChanRelease(chID, 3, 1, false)
	wantRules(t, c, "double-retain", "release-unretained")
}

func TestReplayDivergence(t *testing.T) {
	c := newChecker()
	c.ChanWrite(chID, "pipe", 3, 1, 0, 64, "m0")
	c.ChanWrite(chID, "pipe", 3, 2, 0, 64, "DIFFERENT")
	wantRules(t, c, "replay-divergence")
}

// TestStaleIncarnationFloor: after a migration fences (3, inc 1), a
// frame from endpoint 3 stamped inc 1 is an I1 breach; inc 2 is fine.
func TestStaleIncarnationFloor(t *testing.T) {
	c := newChecker()
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "m0", false)
	c.TaskMigrated(chID, 3, 1, 9)
	c.ChanDeliver(chID, "pipe", 3, 1, 0, "m0", true)
	wantRules(t, c, "stale-incarnation")
	c2 := newChecker()
	c2.ChanDeliver(chID, "pipe", 3, 1, 0, "m0", false)
	c2.TaskMigrated(chID, 3, 1, 9)
	c2.ChanDeliver(chID, "pipe", 3, 2, 0, "m0", true)
	if !c2.Ok() {
		t.Fatalf("post-floor incarnation flagged: %v", c2.Violations())
	}
}

// TestReincarnationReplayWindow: a declared reincarnation makes the
// window [recvSeq, expect) deliverable once more — byte-identical
// replay is clean, a third delivery or a divergent one is not.
func TestReincarnationReplayWindow(t *testing.T) {
	c := newChecker()
	var w, r topo.EndpointID = 3, 7
	for seq := 0; seq < 3; seq++ {
		c.ChanDeliver(chID, "pipe", w, 1, seq, seq, false)
	}
	c.ChanReincarnate(chID, r, w, 0, 1) // reader restored at read-mark 1
	c.ChanDeliver(chID, "pipe", w, 1, 1, 1, false)
	c.ChanDeliver(chID, "pipe", w, 1, 2, 2, false)
	if !c.Ok() {
		t.Fatalf("declared replay flagged: %v", c.Violations())
	}
	c.ChanDeliver(chID, "pipe", w, 1, 2, 2, false) // window consumed
	wantRules(t, c, "double-delivery", "fifo")
}

// TestMigrationAliasing: the migrated writer's new endpoint continues
// the old identity — its replayed write joins the original direction
// state (same fingerprints, no divergence), and the retention ledger
// restarts because the old machine's buffers died with it.
func TestMigrationAliasing(t *testing.T) {
	c := newChecker()
	var w, spare topo.EndpointID = 3, 9
	c.ChanWrite(chID, "pipe", w, 1, 0, 64, "m0")
	c.ChanDeliver(chID, "pipe", w, 1, 0, "m0", false)
	c.ChanRetain(chID, w, 0)
	c.TaskMigrated(chID, w, 1, spare)
	c.ChanWrite(chID, "pipe", spare, 2, 0, 64, "m0") // checkpoint replay
	c.ChanDeliver(chID, "pipe", spare, 2, 0, "m0", true)
	c.ChanRetain(chID, spare, 0) // fresh ledger on the spare
	c.ChanRelease(chID, spare, 0, false)
	if !c.Ok() {
		t.Fatalf("migrated identity flagged: %v", c.Violations())
	}
}

func TestBadRefusal(t *testing.T) {
	c := newChecker()
	c.FrameRefused(7, 3, 1, 2, "chan") // below floor: legitimate
	c.FrameRefused(7, 3, 2, 2, "chan") // at floor: the fence is broken
	wantRules(t, c, "bad-refusal")
	if c.FramesRefused != 2 {
		t.Fatalf("FramesRefused = %d", c.FramesRefused)
	}
}
