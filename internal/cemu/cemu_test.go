package cemu_test

import (
	"testing"
	"testing/quick"

	"hpcvorx/internal/cemu"
	"hpcvorx/internal/core"
)

func TestRingOscillatorOscillates(t *testing.T) {
	c := cemu.RingOscillator(3)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	state := make([]bool, 3)
	traj := c.Simulate(state, 12)
	// A 3-inverter ring with all-zero start has period 6.
	same := func(a, b []bool) bool {
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if !same(traj[0], traj[6]) || !same(traj[1], traj[7]) {
		t.Fatalf("ring not periodic: %v", traj)
	}
	if same(traj[0], traj[3]) {
		t.Fatalf("ring stuck: %v", traj)
	}
}

func TestAdderComputesCorrectSums(t *testing.T) {
	const n = 4
	c, pins := cemu.RippleAdder(n)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Settle time: the carry chain is ~3n gate delays deep.
	const settle = 3*n + 2
	for a := 0; a < 16; a += 3 {
		for b := 0; b < 16; b += 5 {
			state := make([]bool, c.Signals)
			for i := 0; i < n; i++ {
				state[pins.A[i]] = a&(1<<i) != 0
				state[pins.B[i]] = b&(1<<i) != 0
			}
			traj := c.Simulate(state, settle)
			final := traj[len(traj)-1]
			got := 0
			for i := 0; i < n; i++ {
				if final[pins.Sum[i]] {
					got |= 1 << i
				}
			}
			if final[pins.Cout] {
				got |= 1 << n
			}
			if got != a+b {
				t.Fatalf("%d+%d = %d, circuit says %d", a, b, a+b, got)
			}
		}
	}
}

func TestValidateCatchesBadNetlists(t *testing.T) {
	bad := &cemu.Circuit{Signals: 2, Gates: []cemu.Gate{
		{Kind: cemu.Not, In: []int{0}, Out: 1},
		{Kind: cemu.Not, In: []int{0}, Out: 1}, // double driver
	}}
	if bad.Validate() == nil {
		t.Fatal("double driver accepted")
	}
	bad2 := &cemu.Circuit{Signals: 1, Gates: []cemu.Gate{{Kind: cemu.Not, In: []int{5}, Out: 0}}}
	if bad2.Validate() == nil {
		t.Fatal("bad input index accepted")
	}
	bad3 := &cemu.Circuit{Signals: 2, Gates: []cemu.Gate{{Kind: cemu.Not, In: []int{0, 1}, Out: 1}}}
	if bad3.Validate() == nil {
		t.Fatal("2-input NOT accepted")
	}
}

func TestPrimaryInputs(t *testing.T) {
	c, pins := cemu.RippleAdder(2)
	pis := c.PrimaryInputs()
	want := map[int]bool{pins.A[0]: true, pins.A[1]: true, pins.B[0]: true, pins.B[1]: true, pins.Cin: true}
	if len(pis) != len(want) {
		t.Fatalf("primary inputs = %v", pis)
	}
	for _, pi := range pis {
		if !want[pi] {
			t.Fatalf("unexpected primary input %d", pi)
		}
	}
}

// runDistributed compares the distributed simulation against the
// sequential reference.
func runDistributed(t *testing.T, c *cemu.Circuit, initial []bool, steps, procs, window int) *cemu.Result {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := cemu.Run(sys, c, initial, steps, procs, window)
	if err != nil {
		t.Fatal(err)
	}
	want := c.Simulate(initial, steps)
	final := want[len(want)-1]
	for i := range final {
		if res.Final[i] != final[i] {
			t.Fatalf("signal %d: distributed %v, reference %v (procs=%d window=%d)",
				i, res.Final[i], final[i], procs, window)
		}
	}
	return res
}

func TestDistributedMatchesReferenceRing(t *testing.T) {
	c := cemu.RingOscillator(9)
	runDistributed(t, c, make([]bool, 9), 10, 3, 2)
}

func TestDistributedMatchesReferenceAdder(t *testing.T) {
	c, pins := cemu.RippleAdder(4)
	state := make([]bool, c.Signals)
	state[pins.A[0]] = true
	state[pins.A[2]] = true
	state[pins.B[1]] = true
	state[pins.B[3]] = true
	runDistributed(t, c, state, 14, 4, 4)
}

// Property: for random circuits, partitions, and windows, the
// distributed simulation is bit-identical to the reference.
func TestDistributedEquivalenceProperty(t *testing.T) {
	f := func(seed int64, gatesRaw, procsRaw, windowRaw, stepsRaw uint8) bool {
		gates := int(gatesRaw%30) + 4
		procs := int(procsRaw%4) + 1
		window := int(windowRaw%4) + 1
		steps := int(stepsRaw%6) + 1
		c := cemu.RandomCircuit(4, gates, seed)
		initial := make([]bool, c.Signals)
		for i := range initial {
			initial[i] = (seed>>uint(i%60))&1 == 1
		}
		sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
		if err != nil {
			return false
		}
		res, err := cemu.Run(sys, c, initial, steps, procs, window)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		want := c.Simulate(initial, steps)
		final := want[len(want)-1]
		for i := range final {
			if res.Final[i] != final[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestLockstepIsWindowInsensitive(t *testing.T) {
	// Instructive contrast with Table 1: under the simulator's
	// lockstep exchange each pair carries exactly one message per
	// step, so credits are always replenished before the next send
	// and the buffer count barely matters. The window pays off for
	// *streaming* traffic (Table 1's benchmark), not for synchronous
	// neighbor exchange.
	c := cemu.RandomCircuit(6, 48, 3)
	initial := make([]bool, c.Signals)
	r1 := runDistributed(t, c, initial, 12, 4, 1)
	r4 := runDistributed(t, c, initial, 12, 4, 4)
	lo, hi := float64(r1.Elapsed)*0.9, float64(r1.Elapsed)*1.15
	if f := float64(r4.Elapsed); f < lo || f > hi {
		t.Fatalf("window 4 (%v) differs wildly from window 1 (%v)", r4.Elapsed, r1.Elapsed)
	}
	if r1.PairMessages != r4.PairMessages {
		t.Fatalf("message counts differ: %d vs %d", r1.PairMessages, r4.PairMessages)
	}
}

func TestSingleProcNoMessages(t *testing.T) {
	c := cemu.RingOscillator(5)
	res := runDistributed(t, c, make([]bool, 5), 8, 1, 2)
	if res.PairMessages != 0 {
		t.Fatalf("single-proc run exchanged %d messages", res.PairMessages)
	}
}

func TestRunValidation(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := cemu.RingOscillator(3)
	if _, err := cemu.Run(sys, c, make([]bool, 2), 1, 1, 1); err == nil {
		t.Fatal("bad initial length accepted")
	}
	if _, err := cemu.Run(sys, c, make([]bool, 3), 1, 5, 1); err == nil {
		t.Fatal("too many procs accepted")
	}
}
