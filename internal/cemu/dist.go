package cemu

import (
	"fmt"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/udo"
)

// GateEvalCost is the 68020+68882 time to evaluate one gate's timing
// model per step.
var GateEvalCost = sim.Microseconds(25)

// CoroutineChunk is the number of gates one coroutine evaluates — the
// CEMU structuring of §5: many model-evaluation threads inside one
// subprocess, switched cooperatively.
const CoroutineChunk = 8

// Result reports a distributed simulation run.
type Result struct {
	Procs   int
	Steps   int
	Window  int
	Elapsed sim.Duration
	// PairMessages counts boundary-update messages exchanged.
	PairMessages int
	// Final is the final signal state.
	Final []bool
}

// update carries one step's boundary signal values from one node to
// another.
type update struct {
	step int
	vals []bool
}

// Run simulates the circuit for `steps` unit-delay steps on P
// processing nodes, with gates partitioned contiguously. Boundary
// values are exchanged every step over sliding-window user-defined
// objects with k buffers (the Table 1 protocol, in its natural
// habitat); gate evaluation inside each node runs on coroutines.
func Run(sys *core.System, c *Circuit, initial []bool, steps, procs, window int) (*Result, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if len(initial) != c.Signals {
		return nil, fmt.Errorf("cemu: initial state has %d signals, circuit %d", len(initial), c.Signals)
	}
	if procs < 1 || procs > len(sys.Nodes()) {
		return nil, fmt.Errorf("cemu: need 1..%d procs, got %d", len(sys.Nodes()), procs)
	}
	if window < 1 {
		window = 1
	}

	// Partition gates contiguously; owner[sig] = node driving it.
	gatesOf := make([][]Gate, procs)
	owner := make([]int, c.Signals)
	for i := range owner {
		owner[i] = -1 // primary input: constant, known everywhere
	}
	per := (len(c.Gates) + procs - 1) / procs
	for gi, g := range c.Gates {
		p := gi / per
		if p >= procs {
			p = procs - 1
		}
		gatesOf[p] = append(gatesOf[p], g)
		owner[g.Out] = p
	}

	// needs[p][q] lists signals driven by q that p's gates read.
	needs := make([][][]int, procs)
	for p := 0; p < procs; p++ {
		needs[p] = make([][]int, procs)
		seen := map[int]bool{}
		for _, g := range gatesOf[p] {
			for _, in := range g.In {
				q := owner[in]
				if q >= 0 && q != p && !seen[in] {
					seen[in] = true
					needs[p][q] = append(needs[p][q], in)
				}
			}
		}
	}

	// Sliding-window links for every directed pair with traffic.
	type pairIO struct {
		tx   *udo.WindowSender
		rx   *udo.WindowReceiver
		sigs []int // signals carried q -> p
	}
	links := make([][]*pairIO, procs) // links[p][q]: p receives q's values
	res := &Result{Procs: procs, Steps: steps, Window: window, Final: make([]bool, c.Signals)}
	for p := 0; p < procs; p++ {
		links[p] = make([]*pairIO, procs)
		for q := 0; q < procs; q++ {
			sigs := needs[p][q]
			if len(sigs) == 0 {
				continue
			}
			name := fmt.Sprintf("cemu.%d.%d", q, p)
			size := 4 + len(sigs) // one byte per signal value
			links[p][q] = &pairIO{
				rx:   udo.NewWindowReceiver(sys.Node(p).IF, name, sys.Node(q).EP, size, window),
				tx:   udo.NewWindowSender(sys.Node(q).IF, name, sys.Node(p).EP, size),
				sigs: sigs,
			}
		}
	}

	start := sys.K.Now()
	var finish sim.Time
	errs := make([]error, procs)
	for p := 0; p < procs; p++ {
		p := p
		sys.Spawn(sys.Node(p), fmt.Sprintf("cemu%d", p), 0, func(sp *kern.Subprocess) {
			// Local full-state copy; foreign values refreshed per step.
			state := append([]bool(nil), initial...)
			next := append([]bool(nil), initial...)

			// Prime the window credits.
			for q := 0; q < procs; q++ {
				if links[p][q] != nil {
					links[p][q].rx.Start(sp)
				}
			}
			sp.SleepFor(sim.Milliseconds(1)) // let credits land

			for s := 0; s < steps; s++ {
				// Evaluate this node's gates on coroutines, CEMU
				// style: one cooperative thread per chunk of gates.
				g := kern.NewCoroutineGroup(sp)
				for lo := 0; lo < len(gatesOf[p]); lo += CoroutineChunk {
					hi := lo + CoroutineChunk
					if hi > len(gatesOf[p]) {
						hi = len(gatesOf[p])
					}
					chunk := gatesOf[p][lo:hi]
					g.Add(fmt.Sprintf("eval%d", lo), func(co *kern.Coroutine) {
						vals := make([]bool, 0, 8)
						for _, gate := range chunk {
							co.Compute(GateEvalCost)
							vals = vals[:0]
							for _, in := range gate.In {
								vals = append(vals, state[in])
							}
							next[gate.Out] = gate.Kind.eval(vals)
							co.Yield()
						}
					})
				}
				g.Run()

				// Send my boundary values for this step to everyone
				// who needs them.
				for q := 0; q < procs; q++ {
					if q == p || links[q] == nil || links[q][p] == nil {
						continue
					}
					io := links[q][p]
					vals := make([]bool, len(io.sigs))
					for i, sig := range io.sigs {
						vals[i] = next[sig]
					}
					io.tx.Send(sp, update{step: s, vals: vals})
				}
				// Receive everyone else's boundary values.
				for q := 0; q < procs; q++ {
					if links[p][q] == nil {
						continue
					}
					io := links[p][q]
					m := io.rx.Recv(sp)
					u := m.Payload.(update)
					if u.step != s {
						errs[p] = fmt.Errorf("cemu: node %d got step %d update at step %d", p, u.step, s)
						return
					}
					for i, sig := range io.sigs {
						next[sig] = u.vals[i]
					}
				}
				state, next = next, state
				copy(next, state)
			}
			// Publish my signals (and, from node 0, the primary
			// inputs, which never change).
			for _, g := range gatesOf[p] {
				res.Final[g.Out] = state[g.Out]
			}
			if p == 0 {
				for i, o := range owner {
					if o == -1 {
						res.Final[i] = state[i]
					}
				}
			}
			if sp.Now() > finish {
				finish = sp.Now()
			}
		})
	}
	if err := sys.Run(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	for p := 0; p < procs; p++ {
		for q := 0; q < procs; q++ {
			if links[p][q] != nil {
				res.PairMessages += links[p][q].rx.Received
			}
		}
	}
	res.Elapsed = finish.Sub(start)
	return res, nil
}
