// Package cemu is the circuit-simulation workload the paper keeps
// returning to: the CEMU group ran "MOS Timing Simulation on a
// Message Based Multiprocessor" (Ackland et al. 1986) on Meglos,
// wanted to experiment with low-level protocols (§4.1 — their
// experiments motivated the sliding-window benchmark of Table 1), and
// structured their node programs with coroutines because context
// switches were too slow (§5).
//
// This package implements a distributed gate-level timing simulator
// in that mold: a combinational/sequential netlist of unit-delay
// gates is partitioned across processing nodes; each simulated time
// step, every node evaluates its gates with a coroutine per gate
// group and exchanges boundary signal changes with the other nodes
// over sliding-window user-defined objects. Results are verified
// against a sequential reference evaluation.
package cemu

import (
	"fmt"
	"math/rand"
)

// GateKind is a logic gate type.
type GateKind int

// Gate kinds.
const (
	Not GateKind = iota
	And
	Or
	Nand
	Nor
	Xor
)

func (k GateKind) String() string {
	switch k {
	case Not:
		return "not"
	case And:
		return "and"
	case Or:
		return "or"
	case Nand:
		return "nand"
	case Nor:
		return "nor"
	case Xor:
		return "xor"
	}
	return fmt.Sprintf("GateKind(%d)", int(k))
}

// eval computes the gate's output from its input values.
func (k GateKind) eval(in []bool) bool {
	switch k {
	case Not:
		return !in[0]
	case And:
		for _, v := range in {
			if !v {
				return false
			}
		}
		return true
	case Or:
		for _, v := range in {
			if v {
				return true
			}
		}
		return false
	case Nand:
		return !And.eval(in)
	case Nor:
		return !Or.eval(in)
	case Xor:
		out := false
		for _, v := range in {
			out = out != v
		}
		return out
	}
	panic("cemu: unknown gate kind")
}

// Gate is one unit-delay gate: its output signal updates one step
// after its inputs change.
type Gate struct {
	Kind GateKind
	// In lists the signal indices feeding the gate.
	In []int
	// Out is the signal index the gate drives.
	Out int
}

// Circuit is a netlist over a dense signal space. Signals not driven
// by any gate are primary inputs.
type Circuit struct {
	Signals int
	Gates   []Gate
}

// Validate checks indices and single-driver rules.
func (c *Circuit) Validate() error {
	driver := make([]int, c.Signals)
	for i := range driver {
		driver[i] = -1
	}
	for gi, g := range c.Gates {
		if g.Out < 0 || g.Out >= c.Signals {
			return fmt.Errorf("cemu: gate %d drives bad signal %d", gi, g.Out)
		}
		if driver[g.Out] != -1 {
			return fmt.Errorf("cemu: signal %d driven by gates %d and %d", g.Out, driver[g.Out], gi)
		}
		driver[g.Out] = gi
		if len(g.In) == 0 {
			return fmt.Errorf("cemu: gate %d has no inputs", gi)
		}
		if g.Kind == Not && len(g.In) != 1 {
			return fmt.Errorf("cemu: gate %d: NOT takes one input", gi)
		}
		for _, in := range g.In {
			if in < 0 || in >= c.Signals {
				return fmt.Errorf("cemu: gate %d reads bad signal %d", gi, in)
			}
		}
	}
	return nil
}

// PrimaryInputs returns the undriven signal indices, ascending.
func (c *Circuit) PrimaryInputs() []int {
	driven := make([]bool, c.Signals)
	for _, g := range c.Gates {
		driven[g.Out] = true
	}
	var out []int
	for i, d := range driven {
		if !d {
			out = append(out, i)
		}
	}
	return out
}

// Step advances the circuit one unit-delay step sequentially: every
// gate output takes the value computed from the *previous* state —
// the reference semantics the distributed simulator must match.
func (c *Circuit) Step(state []bool) []bool {
	next := make([]bool, len(state))
	copy(next, state)
	vals := make([]bool, 8)
	for _, g := range c.Gates {
		vals = vals[:0]
		for _, in := range g.In {
			vals = append(vals, state[in])
		}
		next[g.Out] = g.Kind.eval(vals)
	}
	return next
}

// Simulate runs `steps` reference steps from the initial state and
// returns the trajectory (including the initial state).
func (c *Circuit) Simulate(initial []bool, steps int) [][]bool {
	traj := [][]bool{append([]bool(nil), initial...)}
	cur := append([]bool(nil), initial...)
	for s := 0; s < steps; s++ {
		cur = c.Step(cur)
		traj = append(traj, append([]bool(nil), cur...))
	}
	return traj
}

// RingOscillator builds the classic n-inverter ring (n odd for
// oscillation).
func RingOscillator(n int) *Circuit {
	c := &Circuit{Signals: n}
	for i := 0; i < n; i++ {
		c.Gates = append(c.Gates, Gate{Kind: Not, In: []int{(i + n - 1) % n}, Out: i})
	}
	return c
}

// RippleAdder builds an n-bit ripple-carry adder: inputs a0..an-1,
// b0..bn-1, cin; outputs sum bits and carry chain (as internal
// signals). Returns the circuit plus the signal indices of interest.
type AdderPins struct {
	A, B []int
	Cin  int
	Sum  []int
	Cout int
}

// RippleAdder constructs the adder netlist.
func RippleAdder(n int) (*Circuit, AdderPins) {
	c := &Circuit{}
	alloc := func() int {
		c.Signals++
		return c.Signals - 1
	}
	pins := AdderPins{Cin: -1}
	for i := 0; i < n; i++ {
		pins.A = append(pins.A, alloc())
	}
	for i := 0; i < n; i++ {
		pins.B = append(pins.B, alloc())
	}
	pins.Cin = alloc()
	carry := pins.Cin
	for i := 0; i < n; i++ {
		axb := alloc()
		c.Gates = append(c.Gates, Gate{Kind: Xor, In: []int{pins.A[i], pins.B[i]}, Out: axb})
		sum := alloc()
		c.Gates = append(c.Gates, Gate{Kind: Xor, In: []int{axb, carry}, Out: sum})
		pins.Sum = append(pins.Sum, sum)
		and1 := alloc()
		c.Gates = append(c.Gates, Gate{Kind: And, In: []int{axb, carry}, Out: and1})
		and2 := alloc()
		c.Gates = append(c.Gates, Gate{Kind: And, In: []int{pins.A[i], pins.B[i]}, Out: and2})
		cout := alloc()
		c.Gates = append(c.Gates, Gate{Kind: Or, In: []int{and1, and2}, Out: cout})
		carry = cout
	}
	pins.Cout = carry
	return c, pins
}

// RandomCircuit builds a deterministic pseudo-random DAG-free netlist
// of nGates gates over nInputs primary inputs (feedback allowed, as
// in sequential logic; unit delays make it well defined).
func RandomCircuit(nInputs, nGates int, seed int64) *Circuit {
	rng := rand.New(rand.NewSource(seed))
	c := &Circuit{Signals: nInputs + nGates}
	kinds := []GateKind{Not, And, Or, Nand, Nor, Xor}
	for g := 0; g < nGates; g++ {
		kind := kinds[rng.Intn(len(kinds))]
		nin := 1
		if kind != Not {
			nin = 2 + rng.Intn(2)
		}
		in := make([]int, nin)
		for i := range in {
			in[i] = rng.Intn(c.Signals)
		}
		c.Gates = append(c.Gates, Gate{Kind: kind, In: in, Out: nInputs + g})
	}
	return c
}
