package bitmap_test

import (
	"testing"

	"hpcvorx/internal/bitmap"
	"hpcvorx/internal/core"
)

func TestRate32MBps(t *testing.T) {
	// Paper §4.1: "we obtained a rate of 3.2 Mbyte/sec, sufficient to
	// refresh a 900×900 pixel portion of a monochrome display 30
	// times per second from a remote processor."
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bitmap.Stream(sys, sys.Node(0), sys.Host(0), bitmap.Width, bitmap.Height, 5)
	if err != nil {
		t.Fatal(err)
	}
	if res.MBytesPerSec < 3.0 || res.MBytesPerSec > 3.5 {
		t.Fatalf("rate = %.2f Mbyte/s, paper reports 3.2", res.MBytesPerSec)
	}
	if res.FPS < 30 {
		t.Fatalf("fps = %.1f, paper says 30 Hz refresh is sustained", res.FPS)
	}
}

func TestFrameBytes(t *testing.T) {
	if got := bitmap.FrameBytes(900, 900); got != 101250 {
		t.Fatalf("900x900 mono frame = %d bytes, want 101250", got)
	}
	if got := bitmap.FrameBytes(8, 8); got != 8 {
		t.Fatalf("8x8 = %d", got)
	}
}

func TestSmallFrameIntegrity(t *testing.T) {
	// Stream() panics inside the simulation if any frame-buffer byte
	// was not written by the final frame, so a clean run is an
	// integrity check.
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bitmap.Stream(sys, sys.Node(0), sys.Host(0), 80, 80, 3)
	if err != nil {
		t.Fatal(err)
	}
	if res.Frames != 3 || res.FrameBytes != 800 {
		t.Fatalf("result = %+v", res)
	}
}

func TestZeroFramesRejected(t *testing.T) {
	sys, _ := core.Build(core.Config{Hosts: 1, Nodes: 1, Seed: 1})
	if _, err := bitmap.Stream(sys, sys.Node(0), sys.Host(0), 8, 8, 0); err == nil {
		t.Fatal("0 frames should error")
	}
}

func TestHardwareFlowControlPacesSender(t *testing.T) {
	// Node-to-node streaming: the receiver's copy loop is the
	// bottleneck (0.28 µs/byte vs the host's 0.1), and the sender
	// must be throttled by hardware backpressure, not buffer bloat.
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := bitmap.Stream(sys, sys.Node(0), sys.Node(1), 400, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Receiver-bound: poll + copy + place ≈ 10+287+4 µs per KB chunk
	// → ~3.3 MB/s; anything wildly above means flow control failed.
	if res.MBytesPerSec > 3.6 {
		t.Fatalf("node-to-node rate %.2f MB/s exceeds the receiver's copy capacity", res.MBytesPerSec)
	}
	if res.MBytesPerSec < 2.5 {
		t.Fatalf("node-to-node rate %.2f MB/s suspiciously low", res.MBytesPerSec)
	}
}
