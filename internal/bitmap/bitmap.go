// Package bitmap is the real-time bitmap transmission experiment of
// paper §4.1: a processing node streams display frames to a
// workstation, which copies them from the HPC directly into its frame
// buffer. All flow control is done by the HPC hardware; the protocol
// overhead is "only the few statements needed to determine where to
// place the incoming bitmap data". The paper reports 3.2 Mbyte/sec —
// enough to refresh a 900×900 monochrome display 30 times per second
// from a remote processor.
package bitmap

import (
	"fmt"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/udo"
)

// Display geometry of the paper's experiment.
const (
	// Width and Height of the refreshed region, in pixels.
	Width  = 900
	Height = 900
)

// FrameBytes is the size of one monochrome (bi-level) frame.
func FrameBytes(w, h int) int { return w * h / 8 }

// ChunkBytes is the per-message payload streamed at the hardware.
const ChunkBytes = 1024

// PlaceCost is the receiver's per-chunk cost to decide where the data
// goes in the frame buffer ("the few statements").
var PlaceCost = sim.Microseconds(4)

// SendOverhead is the sender's per-chunk cost beyond the raw copy
// (chunk bookkeeping and address arithmetic).
var SendOverhead = sim.Microseconds(17)

// Result reports one streaming run.
type Result struct {
	Frames     int
	FrameBytes int
	Elapsed    sim.Duration
	// MBytesPerSec is the end-to-end delivered bandwidth.
	MBytesPerSec float64
	// FPS is the delivered frame rate.
	FPS float64
}

type chunk struct {
	frame  int
	offset int
	n      int
}

// Stream pushes frames of w×h monochrome pixels from a processing node
// to a host workstation's frame buffer and measures the delivered
// bandwidth. The sender writes at the hardware as fast as it can; the
// workstation polls the HPC and copies straight to the frame buffer;
// only hardware flow control paces them.
func Stream(sys *core.System, from, to *core.Machine, w, h, frames int) (*Result, error) {
	if frames <= 0 {
		return nil, fmt.Errorf("bitmap: need at least one frame")
	}
	fb := FrameBytes(w, h)
	chunksPerFrame := (fb + ChunkBytes - 1) / ChunkBytes
	name := fmt.Sprintf("fbstream.%d", to.EP)
	rx := udo.New(to.IF, name, true) // polled: interrupts off
	tx := udo.NewRemote(from.IF, name)

	res := &Result{Frames: frames, FrameBytes: fb}
	var start, end sim.Time
	started := false

	sys.Spawn(from, "framegen", 0, func(sp *kern.Subprocess) {
		for f := 0; f < frames; f++ {
			for off := 0; off < fb; off += ChunkBytes {
				n := ChunkBytes
				if fb-off < n {
					n = fb - off
				}
				sp.Compute(SendOverhead)
				if !started {
					started = true
					start = sp.Now()
				}
				if err := tx.Send(sp, to.EP, n, chunk{frame: f, offset: off, n: n}); err != nil {
					panic(err)
				}
			}
		}
	})
	sys.Spawn(to, "display", 0, func(sp *kern.Subprocess) {
		buf := make([]byte, fb) // the frame buffer region
		for f := 0; f < frames; f++ {
			for c := 0; c < chunksPerFrame; c++ {
				m := rx.Recv(sp)
				ck := m.Payload.(chunk)
				sp.Compute(PlaceCost)
				// The copy itself was charged by the polled Recv;
				// mark the region so the test can verify coverage.
				for i := ck.offset; i < ck.offset+ck.n; i++ {
					buf[i] = byte(ck.frame + 1)
				}
			}
		}
		end = sp.Now()
		for i, b := range buf {
			if b != byte(frames) {
				panic(fmt.Sprintf("bitmap: frame buffer byte %d = %d, want %d", i, b, frames))
			}
		}
	})
	if err := sys.Run(); err != nil {
		return nil, err
	}
	res.Elapsed = end.Sub(start)
	secs := res.Elapsed.Seconds()
	if secs > 0 {
		res.MBytesPerSec = float64(fb) * float64(frames) / secs / 1e6
		res.FPS = float64(frames) / secs
	}
	return res, nil
}
