package core_test

import (
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
)

func TestBuildSingleCluster(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 10, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Topo.Clusters() != 1 {
		t.Fatalf("12 endpoints should fit one cluster, got %d", sys.Topo.Clusters())
	}
	if len(sys.Hosts()) != 2 || len(sys.Nodes()) != 10 {
		t.Fatalf("hosts=%d nodes=%d", len(sys.Hosts()), len(sys.Nodes()))
	}
	if sys.Host(0).Name() != "host0" || sys.Node(9).Name() != "node9" {
		t.Fatalf("names: %s %s", sys.Host(0).Name(), sys.Node(9).Name())
	}
}

func TestBuildPaperInstallation(t *testing.T) {
	// The 1988 installation: ten SUN 3 workstations + 70 nodes.
	sys, err := core.Build(core.Config{Hosts: 10, Nodes: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(sys.Machines()); got != 80 {
		t.Fatalf("machines = %d", got)
	}
	if sys.Topo.Clusters() != 20 || sys.Topo.Dimension() != 5 {
		t.Fatalf("topology = %v", sys.Topo)
	}
	// Manager placement: distributed = one per processing node.
	if got := len(sys.Mgr.Managers()); got != 70 {
		t.Fatalf("managers = %d, want 70", got)
	}
}

func TestCentralizedManagerOnHost(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 6, CentralizedManager: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	mgrs := sys.Mgr.Managers()
	if len(mgrs) != 1 || mgrs[0] != sys.Host(0).EP {
		t.Fatalf("managers = %v, want [host0]", mgrs)
	}
}

func TestBuildValidation(t *testing.T) {
	if _, err := core.Build(core.Config{}); err == nil {
		t.Fatal("empty machine should fail")
	}
	if _, err := core.Build(core.Config{Nodes: -1}); err == nil {
		t.Fatal("negative nodes should fail")
	}
	// 9 endpoints/cluster would exceed 12 ports once the cube links
	// are added.
	if _, err := core.Build(core.Config{Nodes: 100, NodesPerCluster: 9}); err == nil {
		t.Fatal("port overflow should fail")
	}
}

func TestHostsCopyFasterThanNodes(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := sys.Host(0).Kern.Costs()
	n := sys.Node(0).Kern.Costs()
	if h.Copy >= n.Copy || h.KernelCopy >= n.KernelCopy {
		t.Fatalf("host copy %v/%v should be below node %v/%v", h.Copy, h.KernelCopy, n.Copy, n.KernelCopy)
	}
	if h.ContextSwitch != n.ContextSwitch {
		t.Fatal("non-copy costs should be shared")
	}
}

func TestByEndpoint(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if m := sys.ByEndpoint(sys.Node(1).EP); m != sys.Node(1) {
		t.Fatal("ByEndpoint mismatch")
	}
	if m := sys.ByEndpoint(topo.EndpointID(99)); m != nil {
		t.Fatal("unknown endpoint should be nil")
	}
}

func TestSpawnAndRunFor(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	ticks := 0
	sys.Spawn(sys.Node(0), "ticker", 0, func(sp *kern.Subprocess) {
		for i := 0; i < 5; i++ {
			sp.SleepFor(sim.Milliseconds(10))
			ticks++
		}
	})
	sys.RunFor(sim.Milliseconds(35))
	if ticks != 3 {
		t.Fatalf("ticks after 35ms = %d, want 3", ticks)
	}
	sys.RunFor(sim.Milliseconds(100))
	if ticks != 5 {
		t.Fatalf("ticks = %d, want 5", ticks)
	}
}

func TestDeterministicAcrossBuilds(t *testing.T) {
	run := func() sim.Time {
		sys, err := core.Build(core.Config{Nodes: 4, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 4; i++ {
			i := i
			sys.Spawn(sys.Node(i), "w", 0, func(sp *kern.Subprocess) {
				sp.Compute(sim.Microseconds(float64(100 * (i + 1))))
			})
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.K.Now()
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic: %v vs %v", a, b)
	}
}
