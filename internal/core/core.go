// Package core assembles the full HPC/VORX local area multicomputer:
// a pool of processing nodes and a set of host workstations, all
// attached to an HPC interconnect, each running a VORX kernel with its
// network interface, channel service, and object manager (Figure 1 of
// the paper).
//
// A System is built from a Config and then driven entirely in virtual
// time. Applications are spawned as subprocesses on nodes or hosts and
// may span any combination of them — the defining property of a local
// area multicomputer.
package core

import (
	"fmt"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Config describes the machine to build.
type Config struct {
	// Hosts is the number of workstations (the paper's installation
	// had ten SUN 3s).
	Hosts int
	// Nodes is the number of processing nodes (the paper's pool had
	// 70).
	Nodes int
	// NodesPerCluster controls hypercube construction when the
	// machine exceeds one cluster; 0 means 4, the paper's flagship
	// arrangement (8 cube ports + 4 node ports).
	NodesPerCluster int
	// CentralizedManager places a single object manager on the first
	// host (the Meglos arrangement) instead of replicating managers
	// on every processing node (the VORX arrangement).
	CentralizedManager bool
	// Seed feeds the simulation's deterministic random source.
	Seed int64
	// Shards is the number of parallel simulation shards for
	// BuildSharded: 0 means one shard per topology cluster, 1 a single
	// serial-equivalent shard; the count is clamped to the cluster
	// count. Build ignores it.
	Shards int
	// Costs overrides the calibrated cost model (nil = defaults).
	Costs *m68k.Costs
	// Comm selects the communication profile. The zero value is the
	// classic stop-and-wait stack, byte-identical to earlier revisions;
	// Pipelined() turns on the windowed fast path at every layer.
	Comm CommProfile
}

// CommProfile names a communication stack configuration: the classic
// stop-and-wait protocols the paper starts from, or the pipelined fast
// path its retrospective argues for (windowed fragments, coalesced
// acks, interrupt batching, multi-slot ports). Every field at its zero
// value leaves the corresponding layer on its classic behaviour.
type CommProfile struct {
	// Window is the channel write window (and the flowctl go-back-N
	// window where a Reliable is built from this profile); <= 1 is
	// classic stop-and-wait.
	Window int
	// OutputDepth is the per-output-port buffer depth K; <= 1 keeps
	// the single hardware slot.
	OutputDepth int
	// Coalesce enables receive-interrupt coalescing on every node;
	// CoalesceHorizon is how long the first delivery of a batch waits
	// for company (0 batches only same-instant arrivals).
	Coalesce        bool
	CoalesceHorizon sim.Duration
}

// Classic is the default profile: every protocol stop-and-waits.
func Classic() CommProfile { return CommProfile{} }

// Pipelined is the evolved profile: an 8-deep write window, 4-slot
// output ports, and adaptive interrupt coalescing (zero horizon: an
// idle node takes the interrupt immediately; arrivals during a busy
// drain chain into the next batch, so fragment trains batch under load
// with no added latency for fine-grain traffic).
func Pipelined() CommProfile {
	return CommProfile{Window: 8, OutputDepth: 4, Coalesce: true}
}

// Name renders the profile for reports.
func (cp CommProfile) Name() string {
	if cp.Window <= 1 && cp.OutputDepth <= 1 && !cp.Coalesce {
		return "classic"
	}
	return "pipelined"
}

// Machine is one attached computer: a host workstation or a processing
// node, with its kernel and communications stack.
type Machine struct {
	Kern  *kern.Node
	IF    *netif.IF
	Chans *channels.Service
	EP    topo.EndpointID
	Host  bool
	Index int // index within its class (host i or node i)
}

// Name returns the machine's name ("host3" or "node17").
func (m *Machine) Name() string { return m.Kern.Name() }

// System is a running HPC/VORX installation.
type System struct {
	K     *sim.Kernel
	Costs *m68k.Costs
	Topo  *topo.Topology
	IC    *hpc.Interconnect
	Mgr   *objmgr.Manager
	// Trace is the system-wide event tracer, wired through every layer
	// but created disabled: until Trace.Enable() is called it records
	// nothing and perturbs nothing.
	Trace *trace.Tracer

	hosts []*Machine
	nodes []*Machine
	byEP  map[topo.EndpointID]*Machine
	uids  map[string]int
}

// NextUID hands out the next per-system sequence number for kind
// ("stub", "dfs", ...). Services derive rendezvous names from these
// uids, and the object manager hashes those names for placement — so
// the counters must be per System, not process-global, for a run to be
// hermetic. Hermetic runs are what keep parallel experiment
// replication byte-identical to the serial suite, and are why the
// replication worker pool needs no synchronization here: each worker
// owns its System outright.
func (s *System) NextUID(kind string) int {
	if s.uids == nil {
		s.uids = map[string]int{}
	}
	n := s.uids[kind]
	s.uids[kind] = n + 1
	return n
}

// Build constructs the system.
func Build(cfg Config) (*System, error) {
	if cfg.Nodes < 0 || cfg.Hosts < 0 || cfg.Nodes+cfg.Hosts == 0 {
		return nil, fmt.Errorf("core: need at least one machine (hosts=%d nodes=%d)", cfg.Hosts, cfg.Nodes)
	}
	costs := cfg.Costs
	if costs == nil {
		costs = m68k.DefaultCosts()
	}
	total := cfg.Hosts + cfg.Nodes
	var (
		tp  *topo.Topology
		err error
	)
	if total <= topo.PortsPerCluster {
		tp, err = topo.SingleCluster(total)
	} else {
		per := cfg.NodesPerCluster
		if per == 0 {
			per = 4
		}
		clusters := (total + per - 1) / per
		tp, err = topo.IncompleteHypercube(clusters, per)
	}
	if err != nil {
		return nil, err
	}

	k := sim.NewKernel(cfg.Seed)
	tr := trace.New(k) // disabled until a caller opts in
	k.SetProbe(tr)
	ic := hpc.New(k, costs, tp)
	ic.SetTracer(tr)
	sys := &System{K: k, Costs: costs, Topo: tp, IC: ic, Trace: tr, byEP: make(map[topo.EndpointID]*Machine)}

	// Host workstations (SUN 3s) copy faster than the 68020 nodes;
	// everything else is inherited from the calibrated model.
	hostCosts := *costs
	hostCosts.Copy = costs.HostCopy
	hostCosts.KernelCopy = costs.HostCopy

	build := func(name string, ep topo.EndpointID, host bool, idx int) *Machine {
		c := costs
		if host {
			c = &hostCosts
		}
		kn := kern.NewNode(k, c, name)
		kn.SetTracer(tr)
		m := &Machine{Kern: kn, IF: netif.Attach(kn, ic, ep), EP: ep, Host: host, Index: idx}
		sys.byEP[ep] = m
		return m
	}
	ep := topo.EndpointID(0)
	for i := 0; i < cfg.Hosts; i++ {
		sys.hosts = append(sys.hosts, build(fmt.Sprintf("host%d", i), ep, true, i))
		ep++
	}
	for i := 0; i < cfg.Nodes; i++ {
		sys.nodes = append(sys.nodes, build(fmt.Sprintf("node%d", i), ep, false, i))
		ep++
	}

	// Object manager placement: Meglos centralizes all resource
	// management on a single host; VORX replicates the communications
	// object manager onto every processing node.
	var mgrEPs []topo.EndpointID
	if cfg.CentralizedManager || cfg.Nodes == 0 {
		first := sys.hosts
		if len(first) == 0 {
			first = sys.nodes
		}
		mgrEPs = []topo.EndpointID{first[0].EP}
	} else {
		for _, n := range sys.nodes {
			mgrEPs = append(mgrEPs, n.EP)
		}
	}
	var ifs []*netif.IF
	for _, m := range sys.Machines() {
		ifs = append(ifs, m.IF)
	}
	sys.Mgr = objmgr.New(ifs, mgrEPs)
	for _, m := range sys.Machines() {
		m.Chans = channels.NewService(m.IF, sys.Mgr)
	}

	// Apply the communication profile. Classic (the zero value) takes
	// none of these branches, leaving every layer byte-identical to the
	// stop-and-wait stack.
	if cfg.Comm.OutputDepth > 1 {
		ic.SetOutputDepth(cfg.Comm.OutputDepth)
	}
	for _, m := range sys.Machines() {
		if cfg.Comm.Coalesce {
			m.IF.SetCoalesce(cfg.Comm.CoalesceHorizon)
		}
		if cfg.Comm.Window > 1 {
			m.Chans.SetWindowConfig(channels.WindowConfig{Window: cfg.Comm.Window})
		}
	}
	return sys, nil
}

// Hosts returns the host workstations.
func (s *System) Hosts() []*Machine { return s.hosts }

// Nodes returns the processing nodes.
func (s *System) Nodes() []*Machine { return s.nodes }

// Host returns host i.
func (s *System) Host(i int) *Machine { return s.hosts[i] }

// Node returns processing node i.
func (s *System) Node(i int) *Machine { return s.nodes[i] }

// Machines returns every machine, hosts first.
func (s *System) Machines() []*Machine {
	out := make([]*Machine, 0, len(s.hosts)+len(s.nodes))
	out = append(out, s.hosts...)
	out = append(out, s.nodes...)
	return out
}

// ByEndpoint returns the machine at an endpoint, or nil.
func (s *System) ByEndpoint(ep topo.EndpointID) *Machine { return s.byEP[ep] }

// Spawn starts a subprocess on machine m at priority prio.
func (s *System) Spawn(m *Machine, name string, prio int, body func(sp *kern.Subprocess)) *kern.Subprocess {
	return m.Kern.SpawnSubprocess(name, prio, body)
}

// Run drives the simulation until quiescence and returns a
// *sim.DeadlockError if application processes are stuck.
func (s *System) Run() error { return s.K.Run() }

// RunFor advances virtual time by d.
func (s *System) RunFor(d sim.Duration) { s.K.RunFor(d) }

// Shutdown kills all remaining simulated processes.
func (s *System) Shutdown() { s.K.Shutdown() }
