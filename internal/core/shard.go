// Sharded system assembly: one simulation partitioned over OS threads.
//
// BuildSharded constructs the same machine Build does — same topology,
// same endpoint assignment, same per-machine stacks — but partitions
// the clusters over a sim.Group of kernels (one per shard) coupled by
// the conservative lookahead protocol. Each shard gets its own System
// holding the machines whose clusters it owns, its own fabric shard,
// and its own object-manager view; manager placement hashes over the
// same global endpoint list on every shard, so names resolve to the
// same manager everywhere. Intra-shard simulation is byte-identical to
// serial; with Shards=1 the whole build degenerates to a one-kernel
// group whose dispatch replicates sim.Kernel.Run exactly.
package core

import (
	"fmt"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Sharded is a running installation split over parallel shards.
type Sharded struct {
	Group *sim.Group
	Part  *topo.Partition
	Topo  *topo.Topology
	Costs *m68k.Costs
	// Sys[i] is shard i's System: its kernel, fabric shard, machines,
	// and manager view. Global machine accessors below span all shards.
	Sys []*System

	hosts []*Machine
	nodes []*Machine
	byEP  map[topo.EndpointID]*Machine
	shard map[topo.EndpointID]int
}

// BuildSharded constructs the system partitioned over cfg.Shards
// parallel shards (see Config.Shards for the defaulting rule).
func BuildSharded(cfg Config) (*Sharded, error) {
	if cfg.Nodes < 0 || cfg.Hosts < 0 || cfg.Nodes+cfg.Hosts == 0 {
		return nil, fmt.Errorf("core: need at least one machine (hosts=%d nodes=%d)", cfg.Hosts, cfg.Nodes)
	}
	costs := cfg.Costs
	if costs == nil {
		costs = m68k.DefaultCosts()
	}
	total := cfg.Hosts + cfg.Nodes
	var (
		tp  *topo.Topology
		err error
	)
	if total <= topo.PortsPerCluster {
		tp, err = topo.SingleCluster(total)
	} else {
		per := cfg.NodesPerCluster
		if per == 0 {
			per = 4
		}
		clusters := (total + per - 1) / per
		tp, err = topo.IncompleteHypercube(clusters, per)
	}
	if err != nil {
		return nil, err
	}
	want := cfg.Shards
	if want == 0 {
		want = tp.Clusters()
	}
	part := topo.PartitionClusters(tp, want)
	n := part.Shards()

	sh := &Sharded{
		Part:  part,
		Topo:  tp,
		Costs: costs,
		byEP:  make(map[topo.EndpointID]*Machine),
		shard: make(map[topo.EndpointID]int),
	}
	shardOf := make([]int, tp.Clusters())
	for c := 0; c < tp.Clusters(); c++ {
		shardOf[c] = part.OfCluster(topo.ClusterID(c))
	}

	// One kernel, tracer, and fabric shard per shard. Every kernel gets
	// the same seed: the serial kernel's random source feeds only
	// components that ask for randomness explicitly, none of which are
	// in the sharded stack. Tracers stay disabled — with shards running
	// ahead of each other in wall-clock terms, trace emission at shard
	// boundaries would race; subcommands that trace clamp to one shard.
	kerns := make([]*sim.Kernel, n)
	ics := make([]*hpc.Interconnect, n)
	for i := 0; i < n; i++ {
		kerns[i] = sim.NewKernel(cfg.Seed)
		tr := trace.New(kerns[i])
		kerns[i].SetProbe(tr)
		ics[i] = hpc.New(kerns[i], costs, tp)
		ics[i].SetTracer(tr)
		sh.Sys = append(sh.Sys, &System{
			K: kerns[i], Costs: costs, Topo: tp, IC: ics[i],
			Trace: ics[i].Tracer(), byEP: make(map[topo.EndpointID]*Machine),
		})
	}
	// Route-aware lookahead: the conservative promise between two shards
	// is the minimum cube-route cost between their clusters, not the
	// single-hop floor. Shard pairs that share a boundary link stay at
	// HopFixed (the hand-off protocol posts signals exactly one hop
	// ahead); pairs whose clusters sit k>1 links apart exchange signals
	// only through k relaying boundary crossings, so they can promise
	// k*HopFixed and synchronize far less often.
	hops := part.RouteHops(tp)
	look := make([][]sim.Duration, n)
	for s := range look {
		look[s] = make([]sim.Duration, n)
		for d := range look[s] {
			if s != d {
				look[s][d] = costs.HopFixed * sim.Duration(hops[s][d])
			}
		}
	}
	sh.Group = sim.NewGroup(look, kerns...)
	if n > 1 {
		for i := 0; i < n; i++ {
			ics[i].ConnectShards(i, shardOf, ics)
		}
	}

	hostCosts := *costs
	hostCosts.Copy = costs.HostCopy
	hostCosts.KernelCopy = costs.HostCopy

	// Machines are built in the exact endpoint order Build uses, each
	// on its owning shard's kernel, so per-shard construction order is
	// the serial order restricted to that shard.
	build := func(name string, ep topo.EndpointID, host bool, idx int) *Machine {
		si := part.OfEndpoint(tp, ep)
		sys := sh.Sys[si]
		c := costs
		if host {
			c = &hostCosts
		}
		kn := kern.NewNode(sys.K, c, name)
		kn.SetTracer(sys.Trace)
		m := &Machine{Kern: kn, IF: netif.Attach(kn, sys.IC, ep), EP: ep, Host: host, Index: idx}
		sys.byEP[ep] = m
		sh.byEP[ep] = m
		sh.shard[ep] = si
		return m
	}
	ep := topo.EndpointID(0)
	for i := 0; i < cfg.Hosts; i++ {
		m := build(fmt.Sprintf("host%d", i), ep, true, i)
		sh.hosts = append(sh.hosts, m)
		sh.Sys[sh.shard[ep]].hosts = append(sh.Sys[sh.shard[ep]].hosts, m)
		ep++
	}
	for i := 0; i < cfg.Nodes; i++ {
		m := build(fmt.Sprintf("node%d", i), ep, false, i)
		sh.nodes = append(sh.nodes, m)
		sh.Sys[sh.shard[ep]].nodes = append(sh.Sys[sh.shard[ep]].nodes, m)
		ep++
	}

	// Manager placement hashes names over the global endpoint list —
	// identical on every shard — while each shard's Manager instance
	// serves the interfaces it owns. Requests to a manager endpoint on
	// a foreign shard travel the fabric like any other message.
	var mgrEPs []topo.EndpointID
	if cfg.CentralizedManager || cfg.Nodes == 0 {
		first := sh.hosts
		if len(first) == 0 {
			first = sh.nodes
		}
		mgrEPs = []topo.EndpointID{first[0].EP}
	} else {
		for _, nd := range sh.nodes {
			mgrEPs = append(mgrEPs, nd.EP)
		}
	}
	for _, sys := range sh.Sys {
		var ifs []*netif.IF
		for _, m := range sys.Machines() {
			ifs = append(ifs, m.IF)
		}
		sys.Mgr = objmgr.NewShardView(ifs, mgrEPs)
		for _, m := range sys.Machines() {
			m.Chans = channels.NewService(m.IF, sys.Mgr)
		}
		if cfg.Comm.OutputDepth > 1 {
			sys.IC.SetOutputDepth(cfg.Comm.OutputDepth)
		}
		for _, m := range sys.Machines() {
			if cfg.Comm.Coalesce {
				m.IF.SetCoalesce(cfg.Comm.CoalesceHorizon)
			}
			if cfg.Comm.Window > 1 {
				m.Chans.SetWindowConfig(channels.WindowConfig{Window: cfg.Comm.Window})
			}
		}
	}
	return sh, nil
}

// Shards returns the number of shards after clamping.
func (s *Sharded) Shards() int { return len(s.Sys) }

// Hosts returns every host workstation in global index order.
func (s *Sharded) Hosts() []*Machine { return s.hosts }

// Nodes returns every processing node in global index order.
func (s *Sharded) Nodes() []*Machine { return s.nodes }

// Host returns host i (global index).
func (s *Sharded) Host(i int) *Machine { return s.hosts[i] }

// Node returns processing node i (global index).
func (s *Sharded) Node(i int) *Machine { return s.nodes[i] }

// Machines returns every machine, hosts first, in global order.
func (s *Sharded) Machines() []*Machine {
	out := make([]*Machine, 0, len(s.hosts)+len(s.nodes))
	out = append(out, s.hosts...)
	out = append(out, s.nodes...)
	return out
}

// ByEndpoint returns the machine at an endpoint, or nil.
func (s *Sharded) ByEndpoint(ep topo.EndpointID) *Machine { return s.byEP[ep] }

// ShardOf returns the shard index owning endpoint ep.
func (s *Sharded) ShardOf(ep topo.EndpointID) int { return s.shard[ep] }

// SystemOf returns the per-shard System owning endpoint ep.
func (s *Sharded) SystemOf(ep topo.EndpointID) *System { return s.Sys[s.shard[ep]] }

// Spawn starts a subprocess on machine m, on m's own shard.
func (s *Sharded) Spawn(m *Machine, name string, prio int, body func(sp *kern.Subprocess)) *kern.Subprocess {
	return m.Kern.SpawnSubprocess(name, prio, body)
}

// Run drives all shards until quiescence; see sim.Group.Run.
func (s *Sharded) Run() error { return s.Group.Run() }

// RunFor advances all shards by at most d past the trailing clock.
func (s *Sharded) RunFor(d sim.Duration) { s.Group.RunFor(d) }

// Shutdown kills all remaining simulated processes on every shard.
func (s *Sharded) Shutdown() { s.Group.Shutdown() }

// FabricStats sums interconnect counters over all shards.
func (s *Sharded) FabricStats() hpc.Stats {
	var total hpc.Stats
	for _, sys := range s.Sys {
		st := sys.IC.Stats()
		total.MessagesDelivered += st.MessagesDelivered
		total.BytesDelivered += st.BytesDelivered
		total.MessagesSent += st.MessagesSent
		total.MulticastsSent += st.MulticastsSent
		total.Reroutes += st.Reroutes
		total.HandoffsOut += st.HandoffsOut
		total.HandoffsIn += st.HandoffsIn
	}
	return total
}
