package core

import (
	"fmt"
	"strings"
	"testing"

	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// The sharded build must be observably identical to the serial one:
// same per-pair delivery counts, same per-pair completion instants in
// virtual time, same retransmit totals. The workload below exercises
// the full stack — channel opens rendezvousing through hashed object
// managers, paced writes crossing cluster (and shard) boundaries,
// stop-and-wait acks flowing back — with tie-free staggered starts and
// distinct message sizes per pair.

const (
	stackNodes = 15 // 1 host + 15 nodes -> 4 clusters of 4
	stackPairs = 7
	stackMsgs  = 6
)

type pairOutcome struct {
	recv int
	done sim.Time
}

// chanSys is the surface shared by *System and *Sharded that the
// workload needs.
type chanSys interface {
	Node(i int) *Machine
	Spawn(m *Machine, name string, prio int, body func(sp *kern.Subprocess)) *kern.Subprocess
	Run() error
	Machines() []*Machine
}

// stackTraffic spawns writer/reader pairs spanning clusters. Readers
// on different shards write disjoint slice entries, so the recording
// is race-free under the group scheduler.
func stackTraffic(s chanSys, out []pairOutcome) {
	for pi := 0; pi < stackPairs; pi++ {
		pi := pi
		name := fmt.Sprintf("pair%d", pi)
		wm, rm := s.Node(pi), s.Node(pi+stackPairs)
		size := 192 + 16*pi
		s.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Duration(1+17*pi) * sim.Microsecond)
			ch := wm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < stackMsgs; i++ {
				if err := ch.Write(sp, size, fmt.Sprintf("p%d.%d", pi, i)); err != nil {
					return
				}
				sp.SleepFor(sim.Duration(310+7*pi) * sim.Microsecond)
			}
		})
		s.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
			sp.SleepFor(sim.Duration(9+17*pi) * sim.Microsecond)
			ch := rm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < stackMsgs; i++ {
				if _, ok := ch.Read(sp); !ok {
					return
				}
				out[pi].recv++
				out[pi].done = rm.Kern.Kernel().Now()
			}
		})
	}
}

// stackDigest renders the run's observable outcome canonically.
func stackDigest(s chanSys, out []pairOutcome) string {
	var b strings.Builder
	for pi, o := range out {
		fmt.Fprintf(&b, "pair%d recv=%d done=%d\n", pi, o.recv, int64(o.done))
	}
	retr := 0
	for _, m := range s.Machines() {
		retr += m.Chans.TimeoutRetransmits
	}
	fmt.Fprintf(&b, "retrans=%d\n", retr)
	return b.String()
}

func TestBuildShardedMatchesSerial(t *testing.T) {
	cfg := Config{Hosts: 1, Nodes: stackNodes, Seed: 11}
	sys, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	serialOut := make([]pairOutcome, stackPairs)
	stackTraffic(sys, serialOut)
	if err := sys.Run(); err != nil {
		t.Fatalf("serial run: %v", err)
	}
	want := stackDigest(sys, serialOut)
	for pi, o := range serialOut {
		if o.recv != stackMsgs {
			t.Fatalf("serial pair %d delivered %d/%d", pi, o.recv, stackMsgs)
		}
	}

	for _, shards := range []int{1, 2, 4} {
		c := cfg
		c.Shards = shards
		sh, err := BuildSharded(c)
		if err != nil {
			t.Fatal(err)
		}
		if shards > 1 && sh.Shards() != shards {
			t.Fatalf("want %d shards, built %d", shards, sh.Shards())
		}
		out := make([]pairOutcome, stackPairs)
		stackTraffic(sh, out)
		if err := sh.Run(); err != nil {
			t.Fatalf("shards=%d run: %v", shards, err)
		}
		got := stackDigest(sh, out)
		if got != want {
			t.Fatalf("shards=%d digest diverged from serial:\n--- serial ---\n%s--- shards=%d ---\n%s", shards, want, shards, got)
		}
		if shards > 1 {
			if sh.Group.CrossPosts() == 0 {
				t.Fatalf("shards=%d: no cross-shard posts despite cross-cluster traffic", shards)
			}
			if st := sh.FabricStats(); st.HandoffsOut == 0 || st.HandoffsOut != st.HandoffsIn {
				t.Fatalf("shards=%d: handoffs out=%d in=%d", shards, st.HandoffsOut, st.HandoffsIn)
			}
		}
	}
}

// TestBuildShardedDefaultsToClusters checks the Shards=0 defaulting
// rule and the clamp.
func TestBuildShardedDefaultsToClusters(t *testing.T) {
	sh, err := BuildSharded(Config{Hosts: 1, Nodes: stackNodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != sh.Topo.Clusters() {
		t.Fatalf("default shards = %d, want one per cluster (%d)", sh.Shards(), sh.Topo.Clusters())
	}
	sh, err = BuildSharded(Config{Hosts: 1, Nodes: stackNodes, Seed: 1, Shards: 99})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != sh.Topo.Clusters() {
		t.Fatalf("shards=99 clamped to %d, want %d", sh.Shards(), sh.Topo.Clusters())
	}
}

// TestBuildShardedShardEdges pins the remaining Config.Shards edges:
// Shards=1 degenerates to a one-kernel group with zero effective
// lookahead that still runs the full workload, and a multi-shard build
// carries the route-aware lookahead matrix (HopFixed times the
// minimum cube distance between each shard pair, zero diagonal).
func TestBuildShardedShardEdges(t *testing.T) {
	sh, err := BuildSharded(Config{Hosts: 1, Nodes: stackNodes, Seed: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sh.Shards() != 1 {
		t.Fatalf("shards=1 built %d shards", sh.Shards())
	}
	if la := sh.Group.Lookahead(); la != 0 {
		t.Fatalf("one-shard group lookahead = %v, want 0", la)
	}
	out := make([]pairOutcome, stackPairs)
	stackTraffic(sh, out)
	if err := sh.Run(); err != nil {
		t.Fatal(err)
	}
	for pi, o := range out {
		if o.recv != stackMsgs {
			t.Fatalf("shards=1 pair %d delivered %d/%d", pi, o.recv, stackMsgs)
		}
	}

	sh4, err := BuildSharded(Config{Hosts: 1, Nodes: stackNodes, Seed: 1, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	hops := sh4.Part.RouteHops(sh4.Topo)
	for s := 0; s < sh4.Shards(); s++ {
		for d := 0; d < sh4.Shards(); d++ {
			want := sh4.Costs.HopFixed * sim.Duration(hops[s][d])
			if got := sh4.Group.PairLookahead(s, d); got != want {
				t.Fatalf("lookahead[%d][%d] = %v, want %v (%d hops)", s, d, got, want, hops[s][d])
			}
		}
	}
	if sh4.Group.Lookahead() != sh4.Costs.HopFixed {
		t.Fatalf("group min lookahead = %v, want HopFixed %v", sh4.Group.Lookahead(), sh4.Costs.HopFixed)
	}
}
