// Package super is the cluster supervision layer: it turns the §3.1
// lesson — resource management and crash cleanup belong in the system,
// not in cooperating applications — into a running service. Where the
// fault engine (internal/fault) plays an omniscient oracle that tells
// survivors about a crash after a fixed delay, the supervisor *detects*
// death the way a production LAM must: every monitored machine's kernel
// emits periodic heartbeats over the ordinary channel/netif fabric, and
// a supervisor service on a host workstation maintains a membership
// view with suspect and confirm timeouts in virtual time.
//
// Detection alone only converts hangs into errors. To recover the lost
// work, subprocesses opt in to checkpoint/restart: they register a
// Checkpointer that serializes their state, the supervisor snapshots it
// on an interval (shipping the bytes host-ward over the fabric, so the
// checkpoint cost is visible in the simulation), and on confirmed death
// the subprocess is restarted from its last checkpoint on a spare node
// allocated through resmgr.VORX. The survivors' channel ends are
// rebound to the reincarnated peer's new topo.EndpointID: unacked (and
// retained-but-unstable) writes are retransmitted to the new endpoint,
// and sequence state reconciles from the checkpoint's high-water marks,
// so delivery stays exactly-once end to end.
//
// Determinism: heartbeats, sweeps, and checkpoints are virtual-time
// beacons on the sim clock; membership and channel registries iterate
// in sorted order; one seed plus one schedule yields one bit-identical
// run. A system with no Supervisor constructed registers no services
// and arms no timers — byte-identical to the unsupervised system.
package super

import (
	"fmt"
	"io"
	"sort"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/trace"
)

// Wire sizes and costs of the supervision protocol.
const (
	// HeartbeatBytes is the wire size of one heartbeat.
	HeartbeatBytes = 16
	// StableBytes is the wire size of a stable-mark notice.
	StableBytes = 24
	// CkptHeaderBytes is the framing around a checkpoint transfer.
	CkptHeaderBytes = 64
)

// HeartbeatISR is the supervisor-side cost to absorb one heartbeat.
var HeartbeatISR = sim.Microseconds(4)

// StableISR is the cost to absorb a stable-mark notice.
var StableISR = sim.Microseconds(4)

// State is a monitored machine's membership state.
type State int

// Membership states.
const (
	Alive State = iota
	Suspect
	Dead
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Dead:
		return "dead"
	}
	return fmt.Sprintf("State(%d)", int(s))
}

// Config tunes the supervision timers. Zero fields take defaults.
type Config struct {
	// HeartbeatEvery (H) is the node → supervisor heartbeat period.
	// Default 500 µs.
	HeartbeatEvery sim.Duration
	// SuspectAfter is the silence before a machine is suspected.
	// Default 2H.
	SuspectAfter sim.Duration
	// ConfirmAfter (T) is the silence before death is confirmed and
	// recovery begins. Default 4H.
	ConfirmAfter sim.Duration
	// CheckpointEvery (C) is the snapshot interval for registered
	// tasks. Longer intervals cost less but lose more work on a
	// crash. Default 2 ms.
	CheckpointEvery sim.Duration
	// RestartDelay models downloading the image to the spare node and
	// cold-booting the subprocess. Default 1 ms.
	RestartDelay sim.Duration
	// Fence enables partition-tolerant supervision: deaths are only
	// confirmed while the supervisor can see a majority of the cluster
	// (itself plus the fresh members), and every confirm broadcasts an
	// incarnation fence so a zombie on the minority side of a partition
	// is structurally refused after the heal instead of resuming as a
	// second active incarnation. Off by default — the classic profile
	// trusts silence.
	Fence bool
}

func (c Config) withDefaults() Config {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 500 * sim.Microsecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2 * c.HeartbeatEvery
	}
	if c.ConfirmAfter <= 0 {
		c.ConfirmAfter = 4 * c.HeartbeatEvery
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * sim.Millisecond
	}
	if c.RestartDelay <= 0 {
		c.RestartDelay = 1 * sim.Millisecond
	}
	return c
}

// Record is one supervision event, in virtual-time order.
type Record struct {
	At     sim.Time
	Kind   string // "suspect", "confirm", "spare", "restart", "rebind", ...
	Detail string
}

func (r Record) String() string {
	return fmt.Sprintf("%10v  %-11s %s", r.At, r.Kind, r.Detail)
}

// Mark is a channel's checkpoint high-water mark: how many messages
// the checkpointed state fully accounts for in each direction. Read
// counts messages consumed *and folded into the state*; Written counts
// messages whose Write completed before the state was taken. The
// Checkpointer contract is that state and marks are mutually
// consistent — track both in application variables and snapshot them
// together.
type Mark struct {
	Read    int
	Written int
}

// Checkpointer serializes a task's application state. Checkpoint is
// called from event context on the supervisor's interval; it must
// return a self-contained byte snapshot plus, for every attached
// channel (keyed by channel name), the Mark the state accounts for.
// On restart, the task must regenerate the same logical message stream
// from its state: replayed writes carry their original sequence
// numbers, and the peer's kernel deduplicates them, so determinism of
// the regeneration is what makes delivery exactly-once. Checkpointed
// writer ends must use the default window of 1 (stop-and-wait), so
// that "Write returned" implies "peer delivered".
type Checkpointer interface {
	Checkpoint() (state []byte, marks map[string]Mark)
}

// RespawnFunc is a task body. It runs once per incarnation: generation
// 0 at Launch, and again on every spare node the supervisor restarts
// the task on. inc carries the restored state and the reincarnated
// channel ends (nil/empty on generation 0 — open channels normally and
// Attach them).
type RespawnFunc func(sp *kern.Subprocess, inc *Incarnation)

// Incarnation is what a restarted task wakes up holding.
type Incarnation struct {
	// State is the last committed checkpoint (nil on generation 0 or
	// when death beat the first checkpoint).
	State []byte
	// At is when that checkpoint was committed.
	At sim.Time
	// Gen counts incarnations: 0 is the original launch.
	Gen int
	// Machine is where this incarnation runs.
	Machine *core.Machine

	chans map[string]*channels.Channel
}

// Chan returns the reincarnated channel end with the given rendezvous
// name, or nil (generation 0 opens its channels itself).
func (in *Incarnation) Chan(name string) *channels.Channel { return in.chans[name] }

// Task is one supervised subprocess: a body the supervisor can respawn
// plus the checkpoint and channel registrations of its current
// incarnation.
type Task struct {
	sup     *Supervisor
	name    string
	prio    int
	mach    *core.Machine
	respawn RespawnFunc
	ck      Checkpointer
	gen     int
	snap    snapshot
}

type snapshot struct {
	at    sim.Time
	state []byte
}

// Name returns the task's name.
func (t *Task) Name() string { return t.name }

// Machine returns the machine the task's current incarnation runs on.
func (t *Task) Machine() *core.Machine { return t.mach }

// Gen returns the current incarnation number (0 = original).
func (t *Task) Gen() int { return t.gen }

// SetBody sets or replaces the task body. NewTask accepts the body
// directly; SetBody exists for bodies whose closures need to reference
// the Task itself (for Attach/SetCheckpointer). Set it before Launch.
func (t *Task) SetBody(body RespawnFunc) { t.respawn = body }

// SetCheckpointer registers the incarnation's state serializer. Call
// it from the task body, every incarnation; until it is called the
// task has no checkpoint and a restart resumes from the last committed
// snapshot (or from scratch).
func (t *Task) SetCheckpointer(ck Checkpointer) { t.ck = ck }

// Attach registers a channel end the task owns, enabling endpoint
// migration: the peer end starts retaining acknowledged writes until
// this task's checkpoints stabilize them, and neither end fails on its
// own timeout verdict — the supervisor decides death. Call from the
// task body after Open; reincarnated ends (Incarnation.Chan) are
// already attached.
func (t *Task) Attach(ch *channels.Channel) {
	s := t.sup
	id := ch.ID()
	mc := s.chansByID[id]
	if mc == nil {
		mc = &managedChan{id: id, name: ch.Name()}
		mc.ends[0] = &chanEnd{ep: t.mach.EP}
		mc.ends[1] = &chanEnd{ep: ch.Peer()}
		s.chansByID[id] = mc
		s.chanOrder = append(s.chanOrder, id)
	}
	e := mc.endAt(t.mach.EP)
	if e == nil {
		panic(fmt.Sprintf("super: task %q attaching channel %q from unexpected endpoint", t.name, ch.Name()))
	}
	e.task = t
	// Our own end: supervised, so peer silence means "wait for the
	// supervisor's verdict", not "declare the peer dead".
	ch.SetManaged(false)
	// The peer end must retain acknowledged writes until our
	// checkpoints stabilize them: they are the replay source if we die.
	if pm := s.sys.ByEndpoint(ch.Peer()); pm != nil {
		if pch := pm.Chans.ByID(id); pch != nil {
			pch.SetManaged(true)
		}
	}
}

// Launch spawns the task's generation-0 incarnation on its home
// machine.
func (t *Task) Launch() {
	s := t.sup
	inc := &Incarnation{Gen: 0, Machine: t.mach, chans: map[string]*channels.Channel{}}
	s.sys.Spawn(t.mach, fmt.Sprintf("%s#0", t.name), t.prio, func(sp *kern.Subprocess) {
		t.respawn(sp, inc)
	})
}

// managedChan is the supervisor's registry entry for one supervised
// channel: both ends' current endpoints, owning tasks, and stable
// checkpoint marks.
type managedChan struct {
	id   uint64
	name string
	ends [2]*chanEnd
}

type chanEnd struct {
	task *Task // nil when this end is an unsupervised survivor
	ep   topo.EndpointID
	mark Mark // from the owning task's last committed checkpoint
}

func (mc *managedChan) endAt(ep topo.EndpointID) *chanEnd {
	for _, e := range mc.ends {
		if e.ep == ep {
			return e
		}
	}
	return nil
}

func (mc *managedChan) other(e *chanEnd) *chanEnd {
	if mc.ends[0] == e {
		return mc.ends[1]
	}
	return mc.ends[0]
}

type member struct {
	m        *core.Machine
	lastSeen sim.Time
	state    State
	// lastInc is the highest incarnation seen in a heartbeat from this
	// machine (1 until the first restart: machines boot at 1).
	lastInc uint32
	// held marks a member whose confirm is gated on quorum, so the
	// "quorum-hold" record fires once per outage rather than per sweep.
	held bool
}

// wire message bodies
type hbMsg struct{ from topo.EndpointID }

type ckptMsg struct {
	task  *Task
	gen   int // incarnation that took the snapshot; stale gens are dropped
	state []byte
	marks map[string]Mark
}

type stableMsg struct {
	ch     uint64
	stable int
}

// Supervisor is the supervision service. Create with New (which
// registers its fabric services), register tasks with NewTask, then
// Start it and give it a horizon with StopAt — beacons tick until
// stopped, and a simulation only quiesces once they do.
type Supervisor struct {
	sys  *core.System
	host *core.Machine
	res  *resmgr.VORX
	cfg  Config

	members   map[topo.EndpointID]*member
	order     []topo.EndpointID // sorted, for deterministic sweeps
	tasks     []*Task
	chansByID map[uint64]*managedChan
	chanOrder []uint64
	stops     []func()
	started   bool

	recs      []Record
	verifier  Verifier
	onConfirm []func(ep topo.EndpointID, lastInc uint32)
	// outage tracks a fence-mode quorum loss across sweeps, so the
	// regain edge can void silence accumulated while blind.
	outage bool

	// Stats.
	Heartbeats    int // heartbeats absorbed
	Checkpoints   int // snapshots committed
	Restarts      int // task incarnations spawned on spares
	Rebinds       int // surviving channel ends repointed
	EndsFailed    int // unmanaged/orphaned ends given peer-death errors
	FalseSuspects int // suspicions cleared by a late heartbeat
	QuorumHolds   int // confirms held for lack of quorum (fence mode)
	FencesSent    int // fence notes broadcast on confirm (fence mode)
}

// Verifier observes supervision decisions for the invariant checker
// (internal/verify): fence installations and task migrations, which
// together define where each machine incarnation may legitimately be
// active. Hooks fire in both classic and fence mode — in classic mode
// the checker uses them to demonstrate what the silence-trusting path
// lets through.
type Verifier interface {
	// MachineFenced fires when a confirm broadcasts an incarnation
	// floor for the machine at ep.
	MachineFenced(ep topo.EndpointID, minInc uint32)
	// TaskMigrated fires when a supervised channel end migrates off a
	// confirmed-dead machine: frames on ch from staleEP stamped at or
	// below staleInc now belong to a superseded incarnation.
	TaskMigrated(ch uint64, staleEP topo.EndpointID, staleInc uint32, newEP topo.EndpointID)
}

// SetVerifier installs the supervision observer (nil to remove).
func (s *Supervisor) SetVerifier(v Verifier) { s.verifier = v }

// OnConfirm registers a hook invoked when a machine's death is
// confirmed, after any fence broadcast and before channel recovery.
// Other placement authorities bind here — the vchan balancer's
// BrokerConfirmedDead skips its own report-silence wait when the
// supervisor's quorum has already confirmed the machine dead.
func (s *Supervisor) OnConfirm(fn func(ep topo.EndpointID, lastInc uint32)) {
	s.onConfirm = append(s.onConfirm, fn)
}

// New creates a supervisor running on host (one of sys's machines,
// conventionally a workstation) and monitoring every processing node.
// res may be nil (no force-free, spares picked from all live nodes).
// Registering the fabric services happens here, so build the
// supervisor before traffic flows.
func New(sys *core.System, host *core.Machine, res *resmgr.VORX, cfg Config) *Supervisor {
	s := &Supervisor{
		sys: sys, host: host, res: res, cfg: cfg.withDefaults(),
		members:   make(map[topo.EndpointID]*member),
		chansByID: make(map[uint64]*managedChan),
	}
	hcosts := host.Kern.Costs()
	host.IF.Register("super.hb", netif.Service{
		Cost:   func(*hpc.Message) sim.Duration { return HeartbeatISR },
		Handle: s.handleHeartbeat,
	})
	host.IF.Register("super.ckpt", netif.Service{
		Cost: func(m *hpc.Message) sim.Duration {
			return hcosts.KernelCopyTime(m.Size)
		},
		Handle: s.handleCheckpoint,
	})
	for _, m := range sys.Machines() {
		m := m
		m.IF.Register("super.stable", netif.Service{
			Cost:   func(*hpc.Message) sim.Duration { return StableISR },
			Handle: func(msg *hpc.Message) { s.handleStable(m, msg) },
		})
	}
	for _, n := range sys.Nodes() {
		if n == host {
			continue
		}
		s.members[n.EP] = &member{m: n, state: Alive, lastInc: 1}
		s.order = append(s.order, n.EP)
	}
	sort.Slice(s.order, func(i, j int) bool { return s.order[i] < s.order[j] })
	return s
}

// Config returns the effective (defaulted) configuration.
func (s *Supervisor) Config() Config { return s.cfg }

// MemberState returns the membership state of the machine at ep.
func (s *Supervisor) MemberState(ep topo.EndpointID) State {
	if mb := s.members[ep]; mb != nil {
		return mb.state
	}
	return Alive
}

// NewTask registers a supervised task homed on machine m. The body
// runs once per incarnation; call Launch to spawn generation 0.
func (s *Supervisor) NewTask(name string, m *core.Machine, prio int, body RespawnFunc) *Task {
	if s.members[m.EP] == nil {
		panic(fmt.Sprintf("super: task %q homed on unmonitored machine %s", name, m.Name()))
	}
	t := &Task{sup: s, name: name, prio: prio, mach: m, respawn: body}
	s.tasks = append(s.tasks, t)
	return t
}

// Start arms the heartbeat, sweep, and checkpoint beacons.
func (s *Supervisor) Start() {
	if s.started {
		return
	}
	s.started = true
	now := s.sys.K.Now()
	mode := ""
	if s.cfg.Fence {
		mode = " fence=on"
	}
	s.record("start", "monitoring %d machines: H=%v suspect=%v confirm=%v ckpt=%v restart=%v%s",
		len(s.order), s.cfg.HeartbeatEvery, s.cfg.SuspectAfter, s.cfg.ConfirmAfter,
		s.cfg.CheckpointEvery, s.cfg.RestartDelay, mode)
	for _, ep := range s.order {
		mb := s.members[ep]
		mb.lastSeen = now
		m := mb.m
		s.stops = append(s.stops, m.Kern.Beacon(s.cfg.HeartbeatEvery, func() {
			m.IF.SendAsync(s.host.EP, "super.hb", HeartbeatBytes, hbMsg{from: m.EP}, nil)
		}))
	}
	s.stops = append(s.stops,
		s.host.Kern.Beacon(s.cfg.HeartbeatEvery, s.sweep),
		s.host.Kern.Beacon(s.cfg.CheckpointEvery, s.checkpointAll))
}

// Stop cancels every beacon. Restarts already scheduled still fire.
func (s *Supervisor) Stop() {
	for _, st := range s.stops {
		st()
	}
	s.stops = nil
	if s.started {
		s.started = false
		s.record("stop", "supervision stopped")
	}
}

// StopAt schedules Stop at virtual time at — the supervision horizon.
// Without one, the beacons tick forever and the simulation never
// quiesces.
func (s *Supervisor) StopAt(at sim.Duration) {
	s.sys.K.At(sim.Time(at), s.Stop)
}

// Records returns every supervision event so far, in virtual-time
// order.
func (s *Supervisor) Records() []Record { return s.recs }

// FirstRecord returns the earliest record of the given kind.
func (s *Supervisor) FirstRecord(kind string) (Record, bool) {
	for _, r := range s.recs {
		if r.Kind == kind {
			return r, true
		}
	}
	return Record{}, false
}

// Report writes the supervision log.
func (s *Supervisor) Report(w io.Writer) {
	fmt.Fprintf(w, "supervision log (%d events):\n", len(s.recs))
	for _, r := range s.recs {
		fmt.Fprintln(w, " ", r)
	}
}

// tracer returns the unified event tracer (possibly nil): supervision
// events land on the host machine's "super" lane.
func (s *Supervisor) tracer() *trace.Tracer { return s.host.Kern.Tracer() }

func (s *Supervisor) record(kind, format string, args ...any) {
	detail := fmt.Sprintf(format, args...)
	s.recs = append(s.recs, Record{At: s.sys.K.Now(), Kind: kind, Detail: detail})
	s.tracer().Emit(trace.KSuper, 0, s.host.Kern.Name(), "super", kind+" "+detail)
}

// handleHeartbeat runs at interrupt level on the supervisor's host.
func (s *Supervisor) handleHeartbeat(m *hpc.Message) {
	hb := m.Payload.(netif.Envelope).Body.(hbMsg)
	mb := s.members[hb.from]
	if mb == nil {
		return
	}
	s.Heartbeats++
	mb.lastSeen = s.sys.K.Now()
	if m.Inc > mb.lastInc {
		mb.lastInc = m.Inc
	}
	if tr := s.tracer(); tr.Enabled() {
		tr.Emit(trace.KHeartbeat, m.Trace, s.host.Kern.Name(), "super", mb.m.Name())
		tr.Count("super.heartbeats", 1)
	}
	switch mb.state {
	case Suspect:
		mb.state = Alive
		mb.held = false
		s.FalseSuspects++
		s.tracer().Count("super.false_suspects", 1)
		s.record("clear", "%s heartbeat resumed, suspicion cleared", mb.m.Name())
	case Dead:
		// A restarted machine beats again. It rejoins as a fresh
		// (empty) member: its pre-crash subprocesses were migrated
		// away or failed, and stay that way.
		mb.state = Alive
		mb.held = false
		s.record("rejoin", "%s rejoined as a fresh machine (inc %d)", mb.m.Name(), mb.lastInc)
	}
}

// sweep is the membership check: every heartbeat period, classify each
// monitored machine by how long it has been silent.
func (s *Supervisor) sweep() {
	now := s.sys.K.Now()
	if s.cfg.Fence {
		switch q := s.quorum(now); {
		case !q:
			s.outage = true
		case s.outage:
			// Quorum is back after an outage. Silence accumulated while
			// we lacked a majority view is not evidence of death — a
			// held suspect's heartbeat may simply not have crossed the
			// merged fabric yet — so void the held silence clocks and
			// let the confirm timeout run afresh from here.
			s.outage = false
			voided := 0
			for _, ep := range s.order {
				if mb := s.members[ep]; mb.held {
					mb.lastSeen = now
					mb.held = false
					voided++
				}
			}
			s.record("quorum-back", "majority view restored; silence clocks of %d held suspects voided", voided)
		}
	}
	for _, ep := range s.order {
		mb := s.members[ep]
		if mb.state == Dead {
			continue
		}
		silent := now.Sub(mb.lastSeen)
		switch {
		case silent >= s.cfg.ConfirmAfter:
			if s.cfg.Fence && s.outage {
				// Minority view: our silence verdicts are not to be
				// trusted — we may be the ones cut off. Hold the
				// suspects (no restart, no fence) and degrade until
				// heartbeats return.
				if mb.state == Alive {
					mb.state = Suspect
					s.record("suspect", "%s silent for %v", mb.m.Name(), silent)
				}
				if !mb.held {
					mb.held = true
					s.QuorumHolds++
					s.record("quorum-hold", "%s silent %v but no quorum; holding suspect, no restart",
						mb.m.Name(), silent)
				}
				continue
			}
			s.confirm(mb, silent)
		case silent >= s.cfg.SuspectAfter && mb.state == Alive:
			mb.state = Suspect
			s.record("suspect", "%s silent for %v", mb.m.Name(), silent)
		}
	}
}

// quorum reports whether the supervisor currently sees a majority of
// the cluster: the fresh members (heard from within SuspectAfter) plus
// itself against the full membership plus itself. On the minority side
// of a partition this fails, and silence stops being evidence of
// death.
func (s *Supervisor) quorum(now sim.Time) bool {
	fresh := 0
	for _, ep := range s.order {
		mb := s.members[ep]
		if mb.state != Dead && now.Sub(mb.lastSeen) < s.cfg.SuspectAfter {
			fresh++
		}
	}
	return (fresh+1)*2 > len(s.order)+1
}

// confirm declares a machine dead and drives recovery: peer-death
// errors for unmanaged channel ends, force-free of the dead node's
// processors, and checkpoint/restart migration for its tasks.
func (s *Supervisor) confirm(mb *member, silent sim.Duration) {
	mb.state = Dead
	mb.held = false
	s.record("confirm", "%s declared dead (silent %v)", mb.m.Name(), silent)
	s.tracer().Observe("super.detect.latency", float64(silent))
	if s.cfg.Fence {
		// Fence the dead incarnation before anything restarts: every
		// live machine refuses frames stamped below the floor, so if
		// the "dead" machine is actually a zombie behind a partition,
		// its post-heal traffic is structurally refused and the first
		// refusal tells it to reboot above the floor.
		floor := mb.lastInc + 1
		s.host.IF.Fence(mb.m.EP, floor)
		sent := 0
		for _, om := range s.sys.Machines() {
			if om == s.host || om == mb.m || om.Kern.Crashed() {
				continue
			}
			s.host.IF.SendFenceNote(om.EP, mb.m.EP, floor)
			sent++
		}
		s.FencesSent += sent
		s.record("fence", "%s fenced below inc %d (%d notes)", mb.m.Name(), floor, sent)
		if v := s.verifier; v != nil {
			v.MachineFenced(mb.m.EP, floor)
		}
	}
	for _, fn := range s.onConfirm {
		fn(mb.m.EP, mb.lastInc)
	}
	failed := 0
	for _, other := range s.sys.Machines() {
		if other == mb.m || other.Kern.Crashed() {
			continue
		}
		failed += other.Chans.PeerDown(mb.m.EP)
	}
	s.EndsFailed += failed
	s.record("peer-down", "%s dead: %d unmanaged channel ends failed", mb.m.Name(), failed)
	if s.res != nil && !mb.m.Host {
		owners := s.res.ForceFree([]resmgr.NodeID{resmgr.NodeID(mb.m.Index)})
		s.record("force-free", "node %d (owners %v)", mb.m.Index, owners)
	}
	for _, t := range s.tasks {
		if t.mach == mb.m {
			s.migrate(t)
		}
	}
	// Managed ends whose dead peer carries no task get no
	// reincarnation: fail the survivors so they error out, not hang.
	for _, id := range s.chanIDs() {
		mc := s.chansByID[id]
		for i, e := range mc.ends {
			if e.ep != mb.m.EP || e.task != nil {
				continue
			}
			o := mc.ends[1-i]
			if om := s.sys.ByEndpoint(o.ep); om != nil && !om.Kern.Crashed() {
				if om.Chans.FailEnd(id) {
					s.EndsFailed++
					s.record("orphan", "channel %q: dead end had no task, survivor failed", mc.name)
				}
			}
		}
	}
}

// migrate picks a spare node for a dead machine's task and schedules
// its restart from the last committed checkpoint.
func (s *Supervisor) migrate(t *Task) {
	deadEP := t.mach.EP
	snap := t.snap
	var cands []topo.EndpointID
	byEP := make(map[topo.EndpointID]resmgr.NodeID)
	for i, n := range s.sys.Nodes() {
		if n.Kern.Crashed() || n == s.host {
			continue
		}
		// A spare must be a member we can currently hear: during a
		// partition the whole minority side is Suspect or Dead, and
		// restarting a task behind the cut would strand it.
		if mb := s.members[n.EP]; mb != nil && mb.state != Alive {
			continue
		}
		if s.res != nil && s.res.OwnerOf(resmgr.NodeID(i)) != "" {
			continue
		}
		if s.hostsTask(n) {
			continue
		}
		cands = append(cands, n.EP)
		byEP[n.EP] = resmgr.NodeID(i)
	}
	best := s.sys.Topo.Nearest(deadEP, cands)
	if best < 0 {
		s.record("no-spare", "task %q: no free live node; failing its channels", t.name)
		s.failTaskChannels(t)
		return
	}
	if s.res != nil {
		nid := byEP[best]
		if _, err := s.res.AllocateWhere("super", 1, func(id resmgr.NodeID) bool { return id == nid }); err != nil {
			s.record("no-spare", "task %q: %v", t.name, err)
			s.failTaskChannels(t)
			return
		}
	}
	spare := s.sys.ByEndpoint(best)
	s.record("spare", "task %q: %s (%d cube hops from dead %s)",
		t.name, spare.Name(), s.sys.Topo.Hops(deadEP, best), t.mach.Name())
	s.sys.K.After(s.cfg.RestartDelay, func() {
		if spare.Kern.Crashed() {
			s.record("no-spare", "task %q: spare %s crashed before restart", t.name, spare.Name())
			s.failTaskChannels(t)
			return
		}
		s.restart(t, spare, snap)
	})
}

// hostsTask reports whether any task's current incarnation lives on m
// (spares are spread: one task per machine).
func (s *Supervisor) hostsTask(m *core.Machine) bool {
	for _, t := range s.tasks {
		if t.mach == m {
			return true
		}
	}
	return false
}

// failTaskChannels gives a task's surviving peers peer-death errors
// when no reincarnation is possible.
func (s *Supervisor) failTaskChannels(t *Task) {
	for _, id := range s.chanIDs() {
		mc := s.chansByID[id]
		e := mc.endOf(t)
		if e == nil {
			continue
		}
		o := mc.other(e)
		if om := s.sys.ByEndpoint(o.ep); om != nil && !om.Kern.Crashed() {
			if om.Chans.FailEnd(id) {
				s.EndsFailed++
			}
		}
	}
}

func (mc *managedChan) endOf(t *Task) *chanEnd {
	for _, e := range mc.ends {
		if e.task == t {
			return e
		}
	}
	return nil
}

// restart spawns the task's next incarnation on the spare: channel
// ends are reincarnated with the checkpoint's sequence high-water
// marks, surviving peers are rebound to the new endpoint (replaying
// everything the checkpoint missed), and the body runs again.
func (s *Supervisor) restart(t *Task, spare *core.Machine, snap snapshot) {
	staleEP := t.mach.EP
	staleInc := uint32(1)
	if mb := s.members[staleEP]; mb != nil {
		staleInc = mb.lastInc
	}
	t.gen++
	t.mach = spare
	t.ck = nil // the new incarnation re-registers its checkpointer
	inc := &Incarnation{
		State: snap.state, At: snap.at, Gen: t.gen, Machine: spare,
		chans: map[string]*channels.Channel{},
	}
	for _, id := range s.chanIDs() {
		mc := s.chansByID[id]
		e := mc.endOf(t)
		if e == nil {
			continue
		}
		o := mc.other(e)
		nch := spare.Chans.Reincarnate(id, mc.name, o.ep, e.mark.Written, e.mark.Read)
		if o.task != nil {
			// The peer is supervised too: retain our acknowledged
			// writes for its possible restart.
			nch.SetManaged(true)
		}
		e.ep = spare.EP
		inc.chans[mc.name] = nch
		if v := s.verifier; v != nil {
			v.TaskMigrated(id, staleEP, staleInc, spare.EP)
		}
		if om := s.sys.ByEndpoint(o.ep); om != nil && !om.Kern.Crashed() {
			if om.Chans.Rebind(id, spare.EP, e.mark.Read) {
				s.Rebinds++
				s.record("rebind", "channel %q: %s end rebound to %s, replay from seq %d",
					mc.name, om.Name(), spare.Name(), e.mark.Read)
			}
		}
	}
	s.Restarts++
	s.record("restart", "task %q gen %d on %s (checkpoint from %v, %d bytes)",
		t.name, t.gen, spare.Name(), snap.at, len(snap.state))
	s.sys.Spawn(spare, fmt.Sprintf("%s#%d", t.name, t.gen), t.prio, func(sp *kern.Subprocess) {
		t.respawn(sp, inc)
	})
}

// checkpointAll snapshots every live task's registered state and ships
// it to the supervisor host over the fabric.
func (s *Supervisor) checkpointAll() {
	for _, t := range s.tasks {
		if t.ck == nil || t.mach.Kern.Crashed() {
			continue
		}
		state, marks := t.ck.Checkpoint()
		st := append([]byte(nil), state...)
		mk := make(map[string]Mark, len(marks))
		for k, v := range marks {
			mk[k] = v
		}
		// Serializing the state costs the node a kernel copy at
		// interrupt level — the visible price of a short checkpoint
		// interval.
		t.mach.Kern.Interrupt(t.mach.Kern.Costs().KernelCopyTime(len(st)), nil)
		s.tracer().Emit(trace.KCheckpoint, 0, t.mach.Kern.Name(), "super",
			fmt.Sprintf("snapshot %q gen=%d %dB", t.name, t.gen, len(st)))
		t.mach.IF.SendAsync(s.host.EP, "super.ckpt", len(st)+CkptHeaderBytes,
			ckptMsg{task: t, gen: t.gen, state: st, marks: mk}, nil)
	}
}

// handleCheckpoint commits a snapshot on the supervisor's host and
// pushes stable marks out to retaining peers.
func (s *Supervisor) handleCheckpoint(m *hpc.Message) {
	ck := m.Payload.(netif.Envelope).Body.(ckptMsg)
	t := ck.task
	if ck.gen != t.gen {
		return // a stale incarnation's snapshot arrived after restart
	}
	t.snap = snapshot{at: s.sys.K.Now(), state: ck.state}
	s.Checkpoints++
	if tr := s.tracer(); tr.Enabled() {
		tr.Emit(trace.KCheckpoint, m.Trace, s.host.Kern.Name(), "super",
			fmt.Sprintf("commit %q gen=%d %dB", t.name, ck.gen, len(ck.state)))
		tr.Count("super.checkpoints", 1)
	}
	for _, id := range s.chanIDs() {
		mc := s.chansByID[id]
		e := mc.endOf(t)
		if e == nil {
			continue
		}
		mark, ok := ck.marks[mc.name]
		if !ok {
			continue
		}
		prev := e.mark
		e.mark = mark
		if mark.Read > prev.Read {
			// Everything below the new Read mark is in stable state:
			// the retaining peer can drop it.
			o := mc.other(e)
			if om := s.sys.ByEndpoint(o.ep); om != nil && !om.Kern.Crashed() {
				s.host.IF.SendAsync(o.ep, "super.stable", StableBytes,
					stableMsg{ch: id, stable: mark.Read}, nil)
			}
		}
	}
}

// handleStable runs at interrupt level on a retaining peer's machine.
func (s *Supervisor) handleStable(m *core.Machine, msg *hpc.Message) {
	sm := msg.Payload.(netif.Envelope).Body.(stableMsg)
	m.Chans.ReleaseRetained(sm.ch, sm.stable)
}

// chanIDs returns the supervised channel ids in ascending order.
func (s *Supervisor) chanIDs() []uint64 {
	ids := append([]uint64(nil), s.chanOrder...)
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}
