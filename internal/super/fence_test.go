package super_test

import (
	"fmt"
	"strings"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/super"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/verify"
)

// zombieOutcome is what a partition-isolated-writer run leaves behind.
type zombieOutcome struct {
	chk       *verify.Checker
	sup       *super.Supervisor
	sys       *core.System
	final     []string
	fenced    int // frames refused below a fence floor, all machines
	selfFence int // machines that rebooted off a fence note
}

// runZombieScenario is the incarnation-fencing scenario: a supervised
// writer on node3 (cluster 1) streams to a reader on node7 (cluster
// 2); cluster 1 is cut out of the fabric long enough for the majority
// to confirm the writer dead and migrate it, then the partition heals
// and the old incarnation — a zombie, still live and retransmitting —
// reappears. With fence=false that zombie's frames are accepted
// alongside the migrated incarnation's; with fence=true they are
// structurally refused and the zombie reboots above the floor.
func runZombieScenario(t *testing.T, fence bool) zombieOutcome {
	t.Helper()
	const (
		n    = 30
		pace = 300 * sim.Microsecond
	)
	cfg := super.Config{
		HeartbeatEvery:  500 * sim.Microsecond,
		SuspectAfter:    1 * sim.Millisecond,
		ConfirmAfter:    2 * sim.Millisecond,
		CheckpointEvery: 1 * sim.Millisecond,
		RestartDelay:    1 * sim.Millisecond,
		Fence:           fence,
	}
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 15, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	chk := verify.Attach(sys)
	res := resmgr.NewVORX(sys.K, 15)
	if _, err := res.AllocateWhere("app", 2, func(id resmgr.NodeID) bool {
		return id == 3 || id == 7
	}); err != nil {
		t.Fatal(err)
	}
	sup := super.New(sys, sys.Host(0), res, cfg)
	sup.SetVerifier(chk)
	eng := fault.New(sys.K, 16)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.SetOracle(false)
	// Cut 3ms..8ms: long enough for confirm (5ms) and the restart
	// (6ms) to happen while the old writer is still alive behind the
	// cut — the double-active hazard by construction.
	eng.PartitionAt(3*sim.Millisecond, [][]topo.ClusterID{{1}})
	eng.HealAt(8 * sim.Millisecond)

	var final []string
	writer := sup.NewTask("writer", sys.Node(3), 0, nil)
	reader := sup.NewTask("reader", sys.Node(7), 0, nil)
	writer.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ps := restorePipeState("pipe", inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			writer.Attach(ch)
		}
		writer.SetCheckpointer(ps)
		for ps.written < n {
			if err := ch.Write(sp, 128, fmt.Sprintf("m%d", ps.written)); err != nil {
				return // the zombie's end dies with its machine
			}
			ps.written++
			sp.SleepFor(pace)
		}
	})
	reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ps := restorePipeState("pipe", inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			reader.Attach(ch)
		}
		reader.SetCheckpointer(ps)
		for ps.read < n {
			m, ok := ch.Read(sp)
			if !ok {
				return
			}
			ps.log = append(ps.log, m.Payload.(string))
			ps.read++
		}
		final = ps.log
	})
	writer.Launch()
	reader.Launch()
	sup.Start()
	sup.StopAt(60 * sim.Millisecond)
	// An unfenced zombie retransmits its unacked write forever, so the
	// run never quiesces on its own; give it a hard horizon.
	sys.K.At(sim.Time(60*sim.Millisecond), sys.K.Stop)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	out := zombieOutcome{chk: chk, sup: sup, sys: sys, final: final}
	for _, m := range sys.Machines() {
		out.fenced += m.IF.FencedDrops
		out.selfFence += m.IF.SelfFences
	}
	return out
}

// TestUnfencedZombieViolatesIncarnationInvariant is the regression
// half: on the old silence-confirm path (fence off) the healed zombie
// writer keeps speaking for an identity the supervisor already
// migrated — two active incarnations of one task — and the invariant
// checker catches its frames below the migration floor.
func TestUnfencedZombieViolatesIncarnationInvariant(t *testing.T) {
	out := runZombieScenario(t, false)
	if out.sup.Restarts == 0 {
		t.Fatal("scenario broken: the writer was never migrated")
	}
	if out.fenced != 0 {
		t.Fatalf("fence off but %d frames were refused", out.fenced)
	}
	stale := 0
	for _, v := range out.chk.Violations() {
		if v.Rule == "stale-incarnation" {
			stale++
		}
	}
	if stale == 0 {
		t.Fatalf("zombie frames were all accepted silently; violations = %v", out.chk.Violations())
	}
}

// TestFencedZombieIsRefusedAndReboots is the fencing half: same
// scenario, fence on. The zombie's post-heal frames are refused at
// every receiving interface, the refusal notes make it reboot above
// the floor, and the run is invariant-clean with an exactly-once log.
func TestFencedZombieIsRefusedAndReboots(t *testing.T) {
	out := runZombieScenario(t, true)
	if out.sup.Restarts == 0 {
		t.Fatal("scenario broken: the writer was never migrated")
	}
	if out.sup.FencesSent == 0 {
		t.Fatal("confirm broadcast no fence notes")
	}
	if out.fenced == 0 {
		t.Fatal("no zombie frame was refused")
	}
	if out.selfFence == 0 {
		t.Fatal("the zombie never rebooted off a refusal note")
	}
	if inc := out.sys.Node(3).Kern.Incarnation(); inc < 2 {
		t.Fatalf("zombie machine still at incarnation %d", inc)
	}
	if got, want := strings.Join(out.final, ","), strings.Join(wantStream(30), ","); got != want {
		t.Fatalf("final log not exactly-once:\n got %s\nwant %s", got, want)
	}
	if !out.chk.Ok() {
		t.Fatalf("violations under fencing: %v", out.chk.Violations())
	}
}

// TestMigrationWhilePeerSuspected is the double-failure corner: the
// reader's machine crashes for real while the writer's cluster is
// briefly partitioned — long enough to suspect the writer, too short
// to confirm it. The reader's migration and rebind therefore happen
// against a writer the supervisor does not currently trust; the
// writer's retained/pending replay must still deliver exactly once,
// and the writer's suspicion must clear on its returning heartbeats.
func TestMigrationWhilePeerSuspected(t *testing.T) {
	const (
		n    = 30
		pace = 300 * sim.Microsecond
	)
	cfg := super.Config{
		HeartbeatEvery:  500 * sim.Microsecond,
		SuspectAfter:    1 * sim.Millisecond,
		ConfirmAfter:    2 * sim.Millisecond,
		CheckpointEvery: 1 * sim.Millisecond,
		RestartDelay:    1 * sim.Millisecond,
		Fence:           true,
	}
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 15, Seed: 16})
	if err != nil {
		t.Fatal(err)
	}
	chk := verify.Attach(sys)
	res := resmgr.NewVORX(sys.K, 15)
	if _, err := res.AllocateWhere("app", 2, func(id resmgr.NodeID) bool {
		return id == 3 || id == 7
	}); err != nil {
		t.Fatal(err)
	}
	sup := super.New(sys, sys.Host(0), res, cfg)
	sup.SetVerifier(chk)
	eng := fault.New(sys.K, 16)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.SetOracle(false)
	// Reader dies for real; 300µs later the writer's cluster drops off
	// the fabric for 1.4ms — past SuspectAfter, short of ConfirmAfter.
	// The reader's confirm (4.5ms) and restart (5.5ms) land just as
	// the writer comes back under suspicion.
	eng.CrashNodeAt(2500*sim.Microsecond, 7)
	eng.PartitionAt(2800*sim.Microsecond, [][]topo.ClusterID{{1}})
	eng.HealAt(4200 * sim.Microsecond)

	var final []string
	writer := sup.NewTask("writer", sys.Node(3), 0, nil)
	reader := sup.NewTask("reader", sys.Node(7), 0, nil)
	writer.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ps := restorePipeState("pipe", inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			writer.Attach(ch)
		}
		writer.SetCheckpointer(ps)
		for ps.written < n {
			if err := ch.Write(sp, 128, fmt.Sprintf("m%d", ps.written)); err != nil {
				t.Errorf("writer gen %d: %v", inc.Gen, err)
				return
			}
			ps.written++
			sp.SleepFor(pace)
		}
	})
	reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ps := restorePipeState("pipe", inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			reader.Attach(ch)
		}
		reader.SetCheckpointer(ps)
		for ps.read < n {
			m, ok := ch.Read(sp)
			if !ok {
				return // killed by the crash; the next incarnation resumes
			}
			ps.log = append(ps.log, m.Payload.(string))
			ps.read++
		}
		final = ps.log
	})
	writer.Launch()
	reader.Launch()
	sup.Start()
	sup.StopAt(60 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	if _, ok := sup.FirstRecord("suspect"); !ok {
		t.Fatal("the partitioned writer was never suspected")
	}
	if _, ok := sup.FirstRecord("clear"); !ok {
		t.Fatal("the writer's suspicion never cleared")
	}
	if sup.Restarts != 1 {
		sup.Report(testWriter{t})
		t.Fatalf("restarts = %d, want exactly the reader's", sup.Restarts)
	}
	if sup.Rebinds == 0 {
		t.Fatal("the writer's end was never rebound to the reader's new incarnation")
	}
	if got, want := strings.Join(final, ","), strings.Join(wantStream(n), ","); got != want {
		t.Fatalf("final log not exactly-once:\n got %s\nwant %s", got, want)
	}
	if !chk.Ok() {
		t.Fatalf("violations: %v", chk.Violations())
	}
}
