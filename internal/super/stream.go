package super

import (
	"fmt"
	"strconv"
	"strings"
)

// StreamState is a ready-made Checkpointer for the common supervised
// task shape: a single channel, a read/write cursor pair, and a log of
// consumed payloads. It serializes as "read|written|p0,p1,...", and
// its marks are exactly its cursors — the mutual-consistency contract
// Checkpoint requires holds by construction, because cursor and log
// are advanced together by the task body.
type StreamState struct {
	ChName  string
	Read    int
	Written int
	Log     []string
}

// Checkpoint implements Checkpointer.
func (ss *StreamState) Checkpoint() (state []byte, marks map[string]Mark) {
	return []byte(fmt.Sprintf("%d|%d|%s", ss.Read, ss.Written, strings.Join(ss.Log, ","))),
		map[string]Mark{ss.ChName: {Read: ss.Read, Written: ss.Written}}
}

// RestoreStream rebuilds a StreamState from a checkpoint snapshot; a
// nil or empty snapshot (generation 0, or death before the first
// checkpoint) yields zero cursors and an empty log.
func RestoreStream(chName string, state []byte) *StreamState {
	ss := &StreamState{ChName: chName}
	if len(state) == 0 {
		return ss
	}
	parts := strings.SplitN(string(state), "|", 3)
	if len(parts) != 3 {
		return ss
	}
	ss.Read, _ = strconv.Atoi(parts[0])
	ss.Written, _ = strconv.Atoi(parts[1])
	if parts[2] != "" {
		ss.Log = strings.Split(parts[2], ",")
	}
	return ss
}
