package super_test

import (
	"fmt"
	"strconv"
	"strings"
	"testing"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/super"
)

func build(t *testing.T, hosts, nodes int) *core.System {
	t.Helper()
	sys, err := core.Build(core.Config{Hosts: hosts, Nodes: nodes, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

var testCfg = super.Config{
	HeartbeatEvery:  500 * sim.Microsecond,
	SuspectAfter:    1 * sim.Millisecond,
	ConfirmAfter:    2 * sim.Millisecond,
	CheckpointEvery: 1 * sim.Millisecond,
	RestartDelay:    500 * sim.Microsecond,
}

// TestHeartbeatDetectionTimeline: a crash with the fault engine's
// oracle off is detected purely by heartbeat loss — suspect after
// SuspectAfter of silence, dead after ConfirmAfter — and the window
// from crash to confirm is bounded by confirm timeout + one sweep
// period (plus fabric latency slop).
func TestHeartbeatDetectionTimeline(t *testing.T) {
	sys := build(t, 1, 3)
	sup := super.New(sys, sys.Host(0), nil, testCfg)

	eng := fault.New(sys.K, 7)
	eng.Bind(sys)
	eng.SetOracle(false)
	crashAt := 3 * sim.Millisecond
	eng.CrashNodeAt(crashAt, 1)

	sup.Start()
	sup.StopAt(10 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	if got := sup.MemberState(sys.Node(1).EP); got != super.Dead {
		t.Fatalf("node1 state = %v, want dead", got)
	}
	if got := sup.MemberState(sys.Node(0).EP); got != super.Alive {
		t.Fatalf("node0 state = %v, want alive", got)
	}
	if sup.Heartbeats == 0 {
		t.Fatal("supervisor absorbed no heartbeats")
	}

	suspect, ok := sup.FirstRecord("suspect")
	if !ok {
		t.Fatal("no suspect record")
	}
	confirm, ok := sup.FirstRecord("confirm")
	if !ok {
		t.Fatal("no confirm record")
	}
	if suspect.At.Sub(0) <= crashAt {
		t.Fatalf("suspected at %v, before the crash at %v", suspect.At, crashAt)
	}
	if confirm.At.Sub(suspect.At) <= 0 {
		t.Fatalf("confirm (%v) not after suspect (%v)", confirm.At, suspect.At)
	}
	// Bound: silence starts at most H after the last pre-crash beat,
	// confirm fires on the first sweep seeing >= ConfirmAfter of
	// silence, sweeps run every H. Allow 500us of fabric latency slop.
	bound := crashAt + testCfg.ConfirmAfter + 2*testCfg.HeartbeatEvery + 500*sim.Microsecond
	if confirm.At.Sub(0) > bound {
		t.Fatalf("confirmed at %v, want within %v of the crash", confirm.At, bound)
	}
}

// TestSuspicionClearsOnResumedHeartbeat: silence shorter than the
// confirm timeout (here from a temporarily partitioned-looking crash/
// restart) suspects the machine but never declares it dead.
func TestSuspicionClearsOnResumedHeartbeat(t *testing.T) {
	sys := build(t, 1, 2)
	sup := super.New(sys, sys.Host(0), nil, testCfg)

	eng := fault.New(sys.K, 7)
	eng.Bind(sys)
	eng.SetOracle(false)
	eng.CrashNodeAt(3*sim.Millisecond, 0)
	eng.RestartNodeAt(4400*sim.Microsecond, 0) // inside the confirm window

	sup.Start()
	sup.StopAt(10 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}

	if _, ok := sup.FirstRecord("suspect"); !ok {
		t.Fatal("short outage should at least be suspected")
	}
	if _, ok := sup.FirstRecord("confirm"); ok {
		t.Fatal("short outage must not be confirmed dead")
	}
	if _, ok := sup.FirstRecord("clear"); !ok {
		t.Fatal("resumed heartbeats should clear the suspicion")
	}
	if got := sup.MemberState(sys.Node(0).EP); got != super.Alive {
		t.Fatalf("node0 state = %v, want alive after recovery", got)
	}
}

// pipeState is a Checkpointer for the test tasks: a message log plus
// per-channel marks, serialized as "read|written|payload,payload,...".
type pipeState struct {
	chName  string
	read    int
	written int
	log     []string
}

func (ps *pipeState) Checkpoint() (state []byte, marks map[string]super.Mark) {
	return []byte(fmt.Sprintf("%d|%d|%s", ps.read, ps.written, strings.Join(ps.log, ","))),
		map[string]super.Mark{ps.chName: {Read: ps.read, Written: ps.written}}
}

func restorePipeState(chName string, b []byte) *pipeState {
	ps := &pipeState{chName: chName}
	if len(b) == 0 {
		return ps
	}
	parts := strings.SplitN(string(b), "|", 3)
	ps.read, _ = strconv.Atoi(parts[0])
	ps.written, _ = strconv.Atoi(parts[1])
	if parts[2] != "" {
		ps.log = strings.Split(parts[2], ",")
	}
	return ps
}

// healScenario runs the full checkpoint/restart/migration pipeline: a
// supervised writer streams N paced messages to a supervised reader,
// the fault engine (oracle off) crashes the named victim mid-stream,
// and the supervisor detects, restarts from checkpoint on a spare, and
// rebinds the survivor. It returns the reader's final message log, the
// supervisor, and the system.
func healScenario(t *testing.T, victim string, n int) ([]string, *super.Supervisor, *core.System) {
	t.Helper()
	sys := build(t, 1, 4)
	res := resmgr.NewVORX(sys.K, len(sys.Nodes()))
	if _, err := res.Allocate("app", 2); err != nil { // nodes 0,1
		t.Fatal(err)
	}
	sup := super.New(sys, sys.Host(0), res, testCfg)

	eng := fault.New(sys.K, 7)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.SetOracle(false)

	var final []string
	done := false

	writer := sup.NewTask("writer", sys.Node(0), 0, nil)
	reader := sup.NewTask("reader", sys.Node(1), 0, nil)

	writerBody := func(sp *kern.Subprocess, inc *super.Incarnation) {
		ps := restorePipeState("pipe", inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			writer.Attach(ch)
		}
		writer.SetCheckpointer(ps)
		// Regenerate the stream from the checkpointed cursor: replayed
		// writes reuse their original sequence numbers, so the peer
		// deduplicates anything it already consumed.
		for ps.written < n {
			payload := fmt.Sprintf("m%d", ps.written)
			if err := ch.Write(sp, 128, payload); err != nil {
				t.Errorf("writer gen %d: %v", inc.Gen, err)
				return
			}
			ps.written++
			sp.SleepFor(300 * sim.Microsecond)
		}
	}
	readerBody := func(sp *kern.Subprocess, inc *super.Incarnation) {
		ps := restorePipeState("pipe", inc.State)
		ch := inc.Chan("pipe")
		if ch == nil {
			ch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
			reader.Attach(ch)
		}
		reader.SetCheckpointer(ps)
		for ps.read < n {
			m, ok := ch.Read(sp)
			if !ok {
				return // killed by the crash; the next incarnation resumes
			}
			ps.log = append(ps.log, m.Payload.(string))
			ps.read++
		}
		final = ps.log
		done = true
	}
	writer.SetBody(writerBody)
	reader.SetBody(readerBody)

	switch victim {
	case "writer":
		eng.CrashNodeAt(2*sim.Millisecond, 0)
	case "reader":
		eng.CrashNodeAt(2*sim.Millisecond, 1)
	default:
		t.Fatalf("bad victim %q", victim)
	}

	writer.Launch()
	reader.Launch()
	sup.Start()
	sup.StopAt(60 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !done {
		sup.Report(testWriter{t})
		t.Fatalf("reader never finished: got %d messages", len(final))
	}
	return final, sup, sys
}

type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) { w.t.Log(string(p)); return len(p), nil }

func wantStream(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("m%d", i)
	}
	return out
}

// TestReaderDeathExactlyOnce: the reader node dies mid-stream; the
// supervisor restarts it from checkpoint on a spare, rebinds the
// writer's channel end, and the writer's retained messages replay the
// gap — the final log has every message exactly once, in order.
func TestReaderDeathExactlyOnce(t *testing.T) {
	const n = 20
	final, sup, sys := healScenario(t, "reader", n)
	if got, want := strings.Join(final, ","), strings.Join(wantStream(n), ","); got != want {
		t.Fatalf("reader log:\n got %s\nwant %s", got, want)
	}
	if sup.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", sup.Restarts)
	}
	if sup.Rebinds != 1 {
		t.Fatalf("Rebinds = %d, want 1", sup.Rebinds)
	}
	if sup.Checkpoints == 0 {
		t.Fatal("no checkpoints were committed")
	}
	// The writer survived: its end must never have been failed.
	if got := sys.Node(0).Chans.PeerDeaths; got != 0 {
		t.Fatalf("writer saw %d peer deaths, want 0 (managed end)", got)
	}
	// The spare was allocated through the resource manager.
	if _, ok := sup.FirstRecord("spare"); !ok {
		t.Fatal("no spare record")
	}
}

// TestWriterDeathExactlyOnce: the writer node dies mid-stream; its
// reincarnation regenerates the stream from the checkpointed cursor,
// and the reader's receive sequencing deduplicates the overlap.
func TestWriterDeathExactlyOnce(t *testing.T) {
	const n = 20
	final, sup, _ := healScenario(t, "writer", n)
	if got, want := strings.Join(final, ","), strings.Join(wantStream(n), ","); got != want {
		t.Fatalf("reader log:\n got %s\nwant %s", got, want)
	}
	if sup.Restarts != 1 {
		t.Fatalf("Restarts = %d, want 1", sup.Restarts)
	}
}

// TestUnavailabilityWindowBounded: crash-to-recovery (first post-
// restart delivery) stays within detection + restart cost: confirm
// bound (ConfirmAfter + 2H) plus RestartDelay plus replay slop.
func TestUnavailabilityWindowBounded(t *testing.T) {
	const n = 20
	_, sup, _ := healScenario(t, "reader", n)
	confirm, ok := sup.FirstRecord("confirm")
	if !ok {
		t.Fatal("no confirm record")
	}
	restart, ok := sup.FirstRecord("restart")
	if !ok {
		t.Fatal("no restart record")
	}
	crashAt := 2 * sim.Millisecond
	detect := confirm.At.Sub(0) - crashAt
	if max := testCfg.ConfirmAfter + 2*testCfg.HeartbeatEvery + 500*sim.Microsecond; detect > max {
		t.Fatalf("detection took %v, want <= %v", detect, max)
	}
	gap := restart.At.Sub(confirm.At)
	if max := testCfg.RestartDelay + 500*sim.Microsecond; gap > max {
		t.Fatalf("confirm-to-restart took %v, want <= %v", gap, max)
	}
}

// TestRetainedWritesReleasedByStableMarks: the writer's retained
// buffer is bounded by the reader's checkpoint progress — stable-mark
// notices drain it while both ends are healthy.
func TestRetainedWritesReleasedByStableMarks(t *testing.T) {
	const n = 20
	sys := build(t, 1, 2)
	sup := super.New(sys, sys.Host(0), nil, testCfg)

	writer := sup.NewTask("writer", sys.Node(0), 0, nil)
	reader := sup.NewTask("reader", sys.Node(1), 0, nil)
	var wch *channels.Channel
	writer.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ps := &pipeState{chName: "pipe"}
		wch = inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
		writer.Attach(wch)
		writer.SetCheckpointer(ps)
		for ps.written < n {
			if err := wch.Write(sp, 128, fmt.Sprintf("m%d", ps.written)); err != nil {
				t.Error(err)
				return
			}
			ps.written++
			sp.SleepFor(300 * sim.Microsecond)
		}
	})
	reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ps := &pipeState{chName: "pipe"}
		ch := inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
		reader.Attach(ch)
		reader.SetCheckpointer(ps)
		for ps.read < n {
			if _, ok := ch.Read(sp); !ok {
				t.Error("read failed")
				return
			}
			ps.read++
		}
	})
	writer.Launch()
	reader.Launch()
	sup.Start()
	sup.StopAt(30 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if wch.RetainedWrites() >= n {
		t.Fatalf("retained %d of %d writes: stable marks never released any", wch.RetainedWrites(), n)
	}
	if wch.RetainedWrites() == 0 && sup.Checkpoints == 0 {
		t.Fatal("no checkpoints committed")
	}
}

// TestUnstartedSupervisorIsInert: constructing (but never starting) a
// supervisor changes nothing — the same workload with the oracle-based
// fault engine runs to the same virtual end time with the same channel
// stats as a plain system. This is the byte-identical-when-disabled
// contract.
func TestUnstartedSupervisorIsInert(t *testing.T) {
	run := func(withSup bool) (sim.Time, int, string) {
		sys := build(t, 1, 3)
		if withSup {
			super.New(sys, sys.Host(0), nil, testCfg)
		}
		eng := fault.New(sys.K, 7)
		eng.Bind(sys)
		eng.CrashNodeAt(4*sim.Millisecond, 1)
		var got []string
		sys.Spawn(sys.Node(0), "writer", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(0).Chans.Open(sp, "pipe", objmgr.OpenAny)
			for i := 0; i < 10; i++ {
				if err := ch.Write(sp, 128, fmt.Sprintf("m%d", i)); err != nil {
					return
				}
				sp.SleepFor(300 * sim.Microsecond)
			}
		})
		sys.Spawn(sys.Node(1), "reader", 0, func(sp *kern.Subprocess) {
			ch := sys.Node(1).Chans.Open(sp, "pipe", objmgr.OpenAny)
			for {
				m, ok := ch.Read(sp)
				if !ok {
					return
				}
				got = append(got, m.Payload.(string))
			}
		})
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return sys.K.Now(), sys.Node(0).Chans.PeerDeaths, strings.Join(got, ",")
	}
	endA, deathsA, logA := run(false)
	endB, deathsB, logB := run(true)
	if endA != endB || deathsA != deathsB || logA != logB {
		t.Fatalf("unstarted supervisor perturbed the run:\n plain: end=%v deaths=%d log=%s\n super: end=%v deaths=%d log=%s",
			endA, deathsA, logA, endB, deathsB, logB)
	}
}

// TestHealDeterminism: the full crash/detect/restart/rebind pipeline
// is bit-deterministic — two runs with the same seed produce identical
// supervision logs, stats, and reader output.
func TestHealDeterminism(t *testing.T) {
	run := func() string {
		final, sup, sys := healScenario(t, "reader", 20)
		var b strings.Builder
		sup.Report(&b)
		fmt.Fprintf(&b, "reader: %s\n", strings.Join(final, ","))
		fmt.Fprintf(&b, "stats: hb=%d ck=%d rs=%d rb=%d ef=%d end=%v\n",
			sup.Heartbeats, sup.Checkpoints, sup.Restarts, sup.Rebinds, sup.EndsFailed, sys.K.Now())
		return b.String()
	}
	a, b := run(), run()
	if a != b {
		t.Fatalf("two identical supervised runs diverged:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestOrphanManagedEndFailed: a managed channel whose dead end belongs
// to no supervised task cannot be reincarnated — the surviving end
// must get a peer-death error, not a silent hang.
func TestOrphanManagedEndFailed(t *testing.T) {
	sys := build(t, 1, 2)
	sup := super.New(sys, sys.Host(0), nil, testCfg)

	eng := fault.New(sys.K, 7)
	eng.Bind(sys)
	eng.SetOracle(false)
	eng.CrashNodeAt(2*sim.Millisecond, 1)

	readOK := true
	returned := false
	reader := sup.NewTask("reader", sys.Node(0), 0, nil)
	reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
		ch := inc.Machine.Chans.Open(sp, "pipe", objmgr.OpenAny)
		reader.Attach(ch)
		_, readOK = ch.Read(sp)
		returned = true
	})
	// The peer is a plain subprocess, not a supervised task.
	sys.Spawn(sys.Node(1), "writer", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "pipe", objmgr.OpenAny)
		sp.SleepFor(20 * sim.Millisecond)
		ch.Close(sp)
	})
	reader.Launch()
	sup.Start()
	sup.StopAt(20 * sim.Millisecond)
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if !returned {
		t.Fatal("reader never unblocked")
	}
	if readOK {
		t.Fatal("read from an orphaned dead peer must fail")
	}
	if _, ok := sup.FirstRecord("orphan"); !ok {
		t.Fatal("no orphan record")
	}
}
