package fft_test

import (
	"math/rand"
	"testing"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fft"
)

func randomMatrix(n int, seed int64) *fft.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := fft.NewMatrix(n)
	for i := range m.Data {
		m.Data[i] = complex(rng.Float64(), rng.Float64())
	}
	return m
}

func runDist(t *testing.T, n, procs int, strat fft.Strategy) (*fft.Result, *fft.Matrix, *fft.Matrix) {
	t.Helper()
	sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := randomMatrix(n, 42)
	want := in.Clone()
	if err := fft.FFT2D(want); err != nil {
		t.Fatal(err)
	}
	res, got, err := fft.Run2DFFT(sys, in, procs, strat)
	if err != nil {
		t.Fatal(err)
	}
	return res, got, want
}

func TestDistributedScatterMatchesReference(t *testing.T) {
	res, got, want := runDist(t, 32, 4, fft.Scatter)
	if d := fft.MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("scatter result differs from reference by %g", d)
	}
	// Scatter: each processor reads only the numbers it needs:
	// (P-1) blocks of (n/P)^2 = 3*64 = 192 numbers.
	for p, nr := range res.NumbersRead {
		if nr != 192 {
			t.Errorf("proc %d read %d numbers, want 192", p, nr)
		}
	}
}

func TestDistributedMulticastMatchesReference(t *testing.T) {
	res, got, want := runDist(t, 32, 4, fft.Multicast)
	if d := fft.MaxAbsDiff(got, want); d > 1e-9 {
		t.Fatalf("multicast result differs from reference by %g", d)
	}
	// Multicast: each processor reads (P-1) whole row blocks:
	// 3 * (32/4)*32 = 768 numbers — 4x the scatter traffic here, and
	// the factor grows with P (it is P(n/P)n / ((P-1)(n/P)^2) ≈ P).
	for p, nr := range res.NumbersRead {
		if nr != 768 {
			t.Errorf("proc %d read %d numbers, want 768", p, nr)
		}
	}
}

func TestMulticastReadsGrowWithProcsScatterShrinks(t *testing.T) {
	// §4.2: "as the number of processors is increased, the number of
	// messages received by each processor grows and each process
	// spends more and more time reading data that it is not concerned
	// with."
	mc4, _, _ := runDist(t, 32, 4, fft.Multicast)
	mc8, _, _ := runDist(t, 32, 8, fft.Multicast)
	sc4, _, _ := runDist(t, 32, 4, fft.Scatter)
	sc8, _, _ := runDist(t, 32, 8, fft.Scatter)
	if mc8.NumbersRead[0] <= mc4.NumbersRead[0] {
		t.Fatalf("multicast reads should grow with P: %d -> %d",
			mc4.NumbersRead[0], mc8.NumbersRead[0])
	}
	if sc8.NumbersRead[0] >= sc4.NumbersRead[0] {
		t.Fatalf("scatter reads should shrink with P: %d -> %d",
			sc4.NumbersRead[0], sc8.NumbersRead[0])
	}
}

func TestScatterFasterThanMulticast(t *testing.T) {
	// At a realistic data size the redistribution cost difference
	// dominates: every multicast receiver's kernel reads the whole
	// n×n/P row block from all P-1 senders. The compute phases are
	// identical, so comparing total elapsed compares communication.
	mc, _, _ := runDist(t, 128, 8, fft.Multicast)
	sc, _, _ := runDist(t, 128, 8, fft.Scatter)
	if sc.Elapsed >= mc.Elapsed {
		t.Fatalf("scatter (%v) should beat multicast (%v)", sc.Elapsed, mc.Elapsed)
	}
	commMC := mc.Elapsed - mc.IdealCompute
	commSC := sc.Elapsed - sc.IdealCompute
	if float64(commSC) > 0.7*float64(commMC) {
		t.Fatalf("scatter communication %v not clearly below multicast %v", commSC, commMC)
	}
}

func TestRun2DFFTValidation(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	in := randomMatrix(8, 1)
	if _, _, err := fft.Run2DFFT(sys, in, 3, fft.Scatter); err == nil {
		t.Fatal("3 procs do not divide n=8; expected error")
	}
	if _, _, err := fft.Run2DFFT(sys, in, 4, fft.Scatter); err == nil {
		t.Fatal("system has 3 nodes; 4 procs should fail")
	}
}
