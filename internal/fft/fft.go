// Package fft implements the complex Fast Fourier Transform and the
// distributed two-dimensional FFT of paper §4.2 — the worked example
// for why multicast is usually inappropriate.
//
// The 2DFFT of an n×n image is computed as a 1DFFT over every row,
// a redistribution so each processor holds columns, and a 1DFFT over
// every column. Two redistribution strategies are provided:
//
//   - Multicast: every processor multicasts its entire row results to
//     all the others; each processor reads n*n numbers of which it
//     needs only n*n/P.
//   - Scatter: every processor sends each other processor a message
//     containing only the data it needs.
package fft

import (
	"fmt"
	"math"
	"math/bits"
)

// FFT computes the in-place forward FFT of x (len must be a power of
// two) using the iterative radix-2 Cooley-Tukey algorithm.
func FFT(x []complex128) error {
	return transform(x, false)
}

// IFFT computes the in-place inverse FFT of x (including the 1/n
// normalization).
func IFFT(x []complex128) error {
	if err := transform(x, true); err != nil {
		return err
	}
	n := complex(float64(len(x)), 0)
	for i := range x {
		x[i] /= n
	}
	return nil
}

func transform(x []complex128, inverse bool) error {
	n := len(x)
	if n == 0 || n&(n-1) != 0 {
		return fmt.Errorf("fft: length %d is not a power of two", n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			x[i], x[j] = x[j], x[i]
		}
	}
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		for start := 0; start < n; start += size {
			for k := 0; k < half; k++ {
				w := complex(math.Cos(step*float64(k)), math.Sin(step*float64(k)))
				a := x[start+k]
				b := x[start+k+half] * w
				x[start+k] = a + b
				x[start+k+half] = a - b
			}
		}
	}
	return nil
}

// Butterflies returns the butterfly count of an n-point FFT:
// (n/2)·log2(n). It drives the 68882 execution-cost model.
func Butterflies(n int) int {
	if n < 2 {
		return 0
	}
	return n / 2 * bits.Len(uint(n-1))
}

// Matrix is a dense n×n complex matrix in row-major order.
type Matrix struct {
	N    int
	Data []complex128
}

// NewMatrix allocates an n×n matrix.
func NewMatrix(n int) *Matrix {
	return &Matrix{N: n, Data: make([]complex128, n*n)}
}

// At returns element (r,c).
func (m *Matrix) At(r, c int) complex128 { return m.Data[r*m.N+c] }

// Set stores element (r,c).
func (m *Matrix) Set(r, c int, v complex128) { m.Data[r*m.N+c] = v }

// Row returns row r as a slice view.
func (m *Matrix) Row(r int) []complex128 { return m.Data[r*m.N : (r+1)*m.N] }

// Col copies column c into a fresh slice.
func (m *Matrix) Col(c int) []complex128 {
	out := make([]complex128, m.N)
	for r := 0; r < m.N; r++ {
		out[r] = m.Data[r*m.N+c]
	}
	return out
}

// SetCol stores v as column c.
func (m *Matrix) SetCol(c int, v []complex128) {
	for r := 0; r < m.N; r++ {
		m.Data[r*m.N+c] = v[r]
	}
}

// Clone deep-copies the matrix.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.N)
	copy(out.Data, m.Data)
	return out
}

// FFT2D computes the reference (sequential) 2DFFT in place: a 1DFFT
// of every row, then a 1DFFT of every column.
func FFT2D(m *Matrix) error {
	for r := 0; r < m.N; r++ {
		if err := FFT(m.Row(r)); err != nil {
			return err
		}
	}
	for c := 0; c < m.N; c++ {
		col := m.Col(c)
		if err := FFT(col); err != nil {
			return err
		}
		m.SetCol(c, col)
	}
	return nil
}

// MaxAbsDiff returns the largest element-wise magnitude difference
// between two matrices.
func MaxAbsDiff(a, b *Matrix) float64 {
	max := 0.0
	for i := range a.Data {
		if d := cabs(a.Data[i] - b.Data[i]); d > max {
			max = d
		}
	}
	return max
}

func cabs(z complex128) float64 {
	return math.Hypot(real(z), imag(z))
}
