package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFFTKnownValues(t *testing.T) {
	// FFT of an impulse is all ones.
	x := []complex128{1, 0, 0, 0}
	if err := FFT(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if cmplx.Abs(v-1) > 1e-12 {
			t.Fatalf("impulse FFT[%d] = %v", i, v)
		}
	}
	// FFT of a constant is an impulse of size n at bin 0.
	y := []complex128{2, 2, 2, 2}
	if err := FFT(y); err != nil {
		t.Fatal(err)
	}
	if cmplx.Abs(y[0]-8) > 1e-12 || cmplx.Abs(y[1]) > 1e-12 {
		t.Fatalf("constant FFT = %v", y)
	}
	// Single tone lands in its bin.
	n := 16
	z := make([]complex128, n)
	for i := range z {
		th := 2 * math.Pi * 3 * float64(i) / float64(n)
		z[i] = cmplx.Exp(complex(0, th))
	}
	if err := FFT(z); err != nil {
		t.Fatal(err)
	}
	for i, v := range z {
		want := 0.0
		if i == 3 {
			want = float64(n)
		}
		if math.Abs(cmplx.Abs(v)-want) > 1e-9 {
			t.Fatalf("tone FFT[%d] = %v", i, v)
		}
	}
}

func TestFFTRejectsNonPowerOfTwo(t *testing.T) {
	if err := FFT(make([]complex128, 12)); err == nil {
		t.Fatal("length 12 should be rejected")
	}
	if err := FFT(nil); err == nil {
		t.Fatal("empty input should be rejected")
	}
}

// Property: IFFT(FFT(x)) == x.
func TestRoundTripProperty(t *testing.T) {
	f := func(seed int64, sizeExp uint8) bool {
		n := 1 << (sizeExp%7 + 1) // 2..128
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			orig[i] = x[i]
		}
		if FFT(x) != nil || IFFT(x) != nil {
			return false
		}
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: Parseval — sum |x|^2 == (1/n) sum |X|^2.
func TestParsevalProperty(t *testing.T) {
	f := func(seed int64) bool {
		n := 64
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, n)
		var timeE float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
			timeE += real(x[i])*real(x[i]) + imag(x[i])*imag(x[i])
		}
		if FFT(x) != nil {
			return false
		}
		var freqE float64
		for _, v := range x {
			freqE += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(timeE-freqE/float64(n)) < 1e-6*math.Max(1, timeE)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestButterflies(t *testing.T) {
	cases := map[int]int{1: 0, 2: 1, 4: 4, 8: 12, 256: 1024}
	for n, want := range cases {
		if got := Butterflies(n); got != want {
			t.Errorf("Butterflies(%d) = %d, want %d", n, got, want)
		}
	}
}

func TestFFT2DMatchesSeparable(t *testing.T) {
	// 2D of an impulse at (0,0) is all-ones.
	m := NewMatrix(8)
	m.Set(0, 0, 1)
	if err := FFT2D(m); err != nil {
		t.Fatal(err)
	}
	for i, v := range m.Data {
		if cmplx.Abs(v-1) > 1e-9 {
			t.Fatalf("2D impulse [%d] = %v", i, v)
		}
	}
}

func TestMatrixHelpers(t *testing.T) {
	m := NewMatrix(4)
	m.Set(1, 2, 5)
	if m.At(1, 2) != 5 {
		t.Fatal("Set/At broken")
	}
	col := m.Col(2)
	if col[1] != 5 {
		t.Fatal("Col broken")
	}
	col[3] = 7
	m.SetCol(2, col)
	if m.At(3, 2) != 7 {
		t.Fatal("SetCol broken")
	}
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) == 9 {
		t.Fatal("Clone aliases")
	}
}
