package fft

import (
	"fmt"
	"sort"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/multicast"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/sim"
)

// ComplexBytes is the wire size of one complex number (two 32-bit
// floats on the 68882).
const ComplexBytes = 8

// ButterflyCost is the 68020+68882 execution time of one complex
// butterfly (~10 floating point operations).
var ButterflyCost = sim.Microseconds(65)

// fftCost returns the modeled execution time of an n-point 1DFFT.
func fftCost(n int) sim.Duration {
	return sim.Duration(Butterflies(n)) * ButterflyCost
}

// Strategy selects the redistribution method between the row and
// column phases.
type Strategy int

const (
	// Multicast: each processor multicasts its entire row block to
	// every other processor.
	Multicast Strategy = iota
	// Scatter: each processor sends each other processor only the
	// block it needs.
	Scatter
)

func (s Strategy) String() string {
	if s == Multicast {
		return "multicast"
	}
	return "scatter"
}

// Result reports a distributed 2DFFT run.
type Result struct {
	N        int
	Procs    int
	Strategy Strategy
	Elapsed  sim.Duration
	// NumbersRead is the count of complex numbers each processor's
	// kernel read off the wire during redistribution (the §4.2
	// metric: 65536 with multicast vs 256 with scatter for n=256,
	// P=256).
	NumbersRead []int64
	// IdealCompute is the time two 1DFFT phases would take with
	// zero-cost communications.
	IdealCompute sim.Duration
}

// blockMsg carries rows r0..r1 restricted to columns c0..c1.
type blockMsg struct {
	rows, cols [2]int
	data       []complex128 // row-major within the block
}

// Run2DFFT executes the distributed 2DFFT of an n×n input on P
// processing nodes of the system (P must divide n) and returns the
// measured result plus the computed transform (assembled for
// verification).
func Run2DFFT(sys *core.System, in *Matrix, procs int, strat Strategy) (*Result, *Matrix, error) {
	n := in.N
	if procs <= 0 || n%procs != 0 {
		return nil, nil, fmt.Errorf("fft: %d processors must divide n=%d", procs, n)
	}
	if len(sys.Nodes()) < procs {
		return nil, nil, fmt.Errorf("fft: system has %d nodes, need %d", len(sys.Nodes()), procs)
	}
	rows := n / procs
	work := in.Clone()
	out := NewMatrix(n)
	res := &Result{
		N: n, Procs: procs, Strategy: strat,
		NumbersRead:  make([]int64, procs),
		IdealCompute: sim.Duration(2*rows) * fftCost(n),
	}

	start := sys.K.Now()
	var finished sim.Time
	var done sim.WaitGroup
	done.Add(procs)

	// Per-processor column buffers: colBuf[p] accumulates the rows of
	// the columns processor p owns.
	type recvFn func(sp *kern.Subprocess, p int) []blockMsg
	var setupErr error

	runProc := func(p int, send func(sp *kern.Subprocess, p int, blocks []blockMsg), recv recvFn) {
		node := sys.Node(p)
		sys.Spawn(node, fmt.Sprintf("fft%d", p), 0, func(sp *kern.Subprocess) {
			defer done.Done()
			// Phase 1: row FFTs on my block.
			r0 := p * rows
			for r := r0; r < r0+rows; r++ {
				sp.Compute(fftCost(n))
				if err := FFT(work.Row(r)); err != nil {
					setupErr = err
					return
				}
			}
			// Phase 2: redistribute. Build per-destination blocks.
			var blocks []blockMsg
			for q := 0; q < procs; q++ {
				c0 := q * rows
				blk := blockMsg{rows: [2]int{r0, r0 + rows}, cols: [2]int{c0, c0 + rows}}
				for r := r0; r < r0+rows; r++ {
					blk.data = append(blk.data, work.Row(r)[c0:c0+rows]...)
				}
				blocks = append(blocks, blk)
			}
			send(sp, p, blocks)
			incoming := recv(sp, p)
			// Phase 3: column FFTs on my columns.
			c0 := p * rows
			colBlock := NewMatrix(n) // reuse as n×rows scratch (rows of my columns)
			// My own block.
			for r := r0; r < r0+rows; r++ {
				for c := c0; c < c0+rows; c++ {
					colBlock.Set(r, c-c0, work.At(r, c))
				}
			}
			for _, blk := range incoming {
				i := 0
				for r := blk.rows[0]; r < blk.rows[1]; r++ {
					for c := blk.cols[0]; c < blk.cols[1]; c++ {
						if c >= c0 && c < c0+rows {
							colBlock.Set(r, c-c0, blk.data[i])
						}
						i++
					}
				}
			}
			for c := 0; c < rows; c++ {
				sp.Compute(fftCost(n))
				col := make([]complex128, n)
				for r := 0; r < n; r++ {
					col[r] = colBlock.At(r, c)
				}
				if err := FFT(col); err != nil {
					setupErr = err
					return
				}
				out.SetCol(c0+c, col)
			}
			if sp.Now() > finished {
				finished = sp.Now()
			}
		})
	}

	switch strat {
	case Multicast:
		senders := make([]*multicast.Sender, procs)
		recvs := make([][]*multicast.Receiver, procs) // recvs[p][q]: p's receiver for group q
		for p := 0; p < procs; p++ {
			recvs[p] = make([]*multicast.Receiver, procs)
			senders[p] = multicast.NewSender(sys.Node(p).IF, sys.Mgr, fmt.Sprintf("fftmc.%d", p))
		}
		send := func(sp *kern.Subprocess, p int, blocks []blockMsg) {
			// Group setup in a canonical global order (by group id),
			// so the blocking rendezvous cannot cycle: when group g
			// is up, everyone's next operation concerns group g+1.
			for g := 0; g < procs; g++ {
				if g == p {
					for q := 1; q < procs; q++ {
						senders[p].Accept(sp)
					}
				} else {
					recvs[p][g] = multicast.Join(sys.Node(p).IF, sys.Mgr, sp, fmt.Sprintf("fftmc.%d", g))
				}
			}
			// The whole row block goes to everyone.
			all := blockMsg{rows: blocks[0].rows, cols: [2]int{0, n}}
			r0 := blocks[0].rows[0]
			for r := r0; r < r0+rows; r++ {
				all.data = append(all.data, work.Row(r)...)
			}
			if err := senders[p].Write(sp, len(all.data)*ComplexBytes, all); err != nil {
				setupErr = err
			}
		}
		recv := func(sp *kern.Subprocess, p int) []blockMsg {
			var in []blockMsg
			for q := 0; q < procs; q++ {
				if q == p {
					continue
				}
				m := recvs[p][q].Read(sp)
				in = append(in, m.Payload.(blockMsg))
				res.NumbersRead[p] += int64(m.Size / ComplexBytes)
			}
			return in
		}
		for p := 0; p < procs; p++ {
			runProc(p, send, recv)
		}

	case Scatter:
		chans := make([]map[string]*channelRef, procs)
		send := func(sp *kern.Subprocess, p int, blocks []blockMsg) {
			// Open every channel this processor touches, in globally
			// sorted name order — the standard resource-ordering
			// argument makes the blocking rendezvous deadlock-free.
			names := make([]string, 0, 2*(procs-1))
			for q := 0; q < procs; q++ {
				if q != p {
					names = append(names, pairName(p, q), pairName(q, p))
				}
			}
			sortStrings(names)
			chans[p] = map[string]*channelRef{}
			for _, nm := range names {
				chans[p][nm] = &channelRef{ch: sys.Node(p).Chans.Open(sp, nm, objmgr.OpenAny)}
			}
			for q := 0; q < procs; q++ {
				if q == p {
					continue
				}
				blk := blocks[q]
				if err := chans[p][pairName(p, q)].ch.Write(sp, len(blk.data)*ComplexBytes, blk); err != nil {
					setupErr = err
				}
			}
		}
		recv := func(sp *kern.Subprocess, p int) []blockMsg {
			var in []blockMsg
			for q := 0; q < procs; q++ {
				if q == p {
					continue
				}
				m, ok := chans[p][pairName(q, p)].ch.Read(sp)
				if !ok {
					setupErr = fmt.Errorf("fft: scatter read failed")
					return in
				}
				in = append(in, m.Payload.(blockMsg))
				res.NumbersRead[p] += int64(m.Size / ComplexBytes)
			}
			return in
		}
		for p := 0; p < procs; p++ {
			runProc(p, send, recv)
		}
	}

	if err := sys.Run(); err != nil {
		return nil, nil, fmt.Errorf("fft: %w", err)
	}
	if setupErr != nil {
		return nil, nil, setupErr
	}
	res.Elapsed = finished.Sub(start)
	return res, out, nil
}

// channelRef wraps a channel so the per-processor maps can be built
// before the writes begin.
type channelRef struct{ ch *channels.Channel }

// pairName is the channel name for the sender→receiver block
// transfer; %03d keeps lexicographic order equal to numeric order.
func pairName(from, to int) string { return fmt.Sprintf("fftsc.%03d.%03d", from, to) }

func sortStrings(s []string) { sort.Strings(s) }
