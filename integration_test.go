// Integration tests exercising the whole stack together: the tools on
// real workloads, and the paper's 1988 installation end to end.
package hpcvorx_test

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"hpcvorx/internal/cdb"
	"hpcvorx/internal/core"
	"hpcvorx/internal/fft"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/oscope"
	"hpcvorx/internal/profiler"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/spice"
	"hpcvorx/internal/stub"
	"hpcvorx/internal/workload"
)

// TestOscilloscopeOnFFT records a distributed FFT run and checks that
// the software oscilloscope sees coherent utilization data.
func TestOscilloscopeOnFFT(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sc := oscope.Attach(sys)
	rng := rand.New(rand.NewSource(2))
	in := fft.NewMatrix(32)
	for i := range in.Data {
		in.Data[i] = complex(rng.Float64(), 0)
	}
	if _, _, err := fft.Run2DFFT(sys, in, 4, fft.Scatter); err != nil {
		t.Fatal(err)
	}
	sc.Finalize()
	end := sys.K.Now()
	for i := 0; i < 4; i++ {
		u := sc.Utilization(fmt.Sprintf("node%d", i), 0, end)
		sum := 0.0
		for _, f := range u {
			sum += f
		}
		if sum < 0.99 || sum > 1.01 {
			t.Fatalf("node%d fractions sum to %.3f", i, sum)
		}
		if u[kern.CatUser] < 0.5 {
			t.Fatalf("node%d user fraction %.2f — FFT should be compute-bound", i, u[kern.CatUser])
		}
	}
	// A balanced partition: imbalance well under 30%.
	if im := sc.Imbalance(0, end); im > 0.3 {
		t.Fatalf("imbalance = %.2f", im)
	}
	var b strings.Builder
	sc.Render(&b, 0, end, 50)
	if !strings.Contains(b.String(), "U") {
		t.Fatal("render shows no user time")
	}
}

// TestProfilerOnSpice profiles the phases of a distributed solve.
func TestProfilerOnSpice(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := profiler.New("spice-node0")
	grid := spice.NewGrid(16)
	// Wrap the solve in profiled phases via a driver subprocess on an
	// extra node... simplest: profile the sequential reference next
	// to the distributed run's elapsed time.
	var seqTime sim.Duration
	sys.Spawn(sys.Node(0), "profiled", 0, func(sp *kern.Subprocess) {
		stop := p.Enter(sp, "sequential-solve")
		sp.Compute(sim.Duration(16*16*5*30) * spice.FlopCost) // 30 sweeps of compute
		grid.SolveSequential(30)
		stop()
		seqTime = p.Phase("sequential-solve")
	})
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	if seqTime <= 0 {
		t.Fatal("no profiled time")
	}
	name, d := p.Hottest()
	if name != "sequential-solve" || d != seqTime {
		t.Fatalf("hottest = %s %v", name, d)
	}
	if !strings.Contains(p.String(), "100.0%") {
		t.Fatalf("report:\n%s", p)
	}
}

// TestCdbSeesApplicationChannels captures the communications state in
// the middle of a real workload.
func TestCdbSeesApplicationChannels(t *testing.T) {
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sys.Spawn(sys.Node(0), "w", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "app.data", objmgr.OpenAny)
		for i := 0; i < 50; i++ {
			if err := ch.Write(sp, 256, nil); err != nil {
				t.Error(err)
				return
			}
		}
	})
	sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "app.data", objmgr.OpenAny)
		for i := 0; i < 50; i++ {
			if _, ok := ch.Read(sp); !ok {
				t.Error("read failed")
				return
			}
		}
	})
	// Freeze mid-run and inspect.
	sys.RunFor(sim.Milliseconds(10))
	snap := cdb.Capture(sys).Select(cdb.ByName("app.data"))
	if len(snap.Ends) != 2 {
		t.Fatalf("ends = %d", len(snap.Ends))
	}
	mid := snap.Ends[0].Sent + snap.Ends[1].Sent
	if mid == 0 || mid >= 50 {
		t.Fatalf("mid-run sent count = %d, want 0 < n < 50", mid)
	}
	// Finish cleanly.
	if err := sys.Run(); err != nil {
		t.Fatal(err)
	}
	final := cdb.Capture(sys).Select(cdb.ByName("app.data"))
	var w cdb.End
	for _, e := range final.Ends {
		if e.Machine == "node0" {
			w = e
		}
	}
	if w.Sent != 50 {
		t.Fatalf("final sent = %d", w.Sent)
	}
}

// TestPaperInstallationEndToEnd assembles the 1988 machine — ten
// workstations, seventy nodes — boots an application onto all 70
// nodes with the tree download, then runs channel traffic and a
// rendezvous storm over the running system.
func TestPaperInstallationEndToEnd(t *testing.T) {
	sys, err := core.Build(core.Config{Hosts: 10, Nodes: 70, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Topo.Endpoints() < 80 {
		t.Fatalf("topology too small: %v", sys.Topo)
	}
	app := stub.Launch(sys, sys.Host(0), sys.Nodes(), stub.DefaultImage(), stub.SharedTree, nil)
	sys.RunFor(sim.Seconds(30))
	if !app.Ready() {
		t.Fatal("boot incomplete")
	}
	boot := app.StartedAt
	if boot.Seconds() > 4 {
		t.Fatalf("boot took %.2f s", boot.Seconds())
	}

	// Cross-machine traffic on the booted system: host-to-node and
	// node-to-node, concurrently.
	lat := workload.ChannelLatency(sys, sys.Node(3), sys.Node(57), 4, 100)
	if lat < 290 || lat > 380 {
		t.Fatalf("node-node latency on busy machine = %.1f µs", lat)
	}

	res := workload.OpenStorm(sys, 2)
	if res.Opens != 140 { // 35 pairs x 2 sides x 2 opens
		t.Fatalf("storm opens = %d", res.Opens)
	}
	if res.MaxPerManager > res.Opens/4 {
		t.Fatalf("manager hot spot: %d of %d opens on one manager", res.MaxPerManager, res.Opens)
	}
	sys.Shutdown()
}

// TestEndToEndDeterminism runs a mixed workload twice and requires
// bit-identical outcomes.
func TestEndToEndDeterminism(t *testing.T) {
	run := func() string {
		sys, err := core.Build(core.Config{Hosts: 2, Nodes: 6, Seed: 77})
		if err != nil {
			t.Fatal(err)
		}
		var log []string
		for i := 0; i < 3; i++ {
			i := i
			sys.Spawn(sys.Node(i), fmt.Sprintf("w%d", i), 0, func(sp *kern.Subprocess) {
				ch := sys.Node(i).Chans.Open(sp, fmt.Sprintf("det%d", i), objmgr.OpenAny)
				for j := 0; j < 5; j++ {
					ch.Write(sp, 100*(i+1), j)
				}
				log = append(log, fmt.Sprintf("w%d@%v", i, sp.Now()))
			})
			sys.Spawn(sys.Node(i+3), fmt.Sprintf("r%d", i), 0, func(sp *kern.Subprocess) {
				ch := sys.Node(i+3).Chans.Open(sp, fmt.Sprintf("det%d", i), objmgr.OpenAny)
				for j := 0; j < 5; j++ {
					ch.Read(sp)
				}
				log = append(log, fmt.Sprintf("r%d@%v", i, sp.Now()))
			})
		}
		if err := sys.Run(); err != nil {
			t.Fatal(err)
		}
		return strings.Join(log, ";") + fmt.Sprint(sys.IC.Stats())
	}
	if a, b := run(), run(); a != b {
		t.Fatalf("nondeterministic:\n%s\n%s", a, b)
	}
}
