// Command vdb demonstrates the VORX symbolic debugger (paper §6) on a
// running three-process application: it attaches to a process that is
// already executing, stops it at a breakpoint, examines its variables
// while the other processes keep running, switches processes, and
// continues.
package main

import (
	"flag"
	"fmt"
	"log"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vdb"
)

func main() {
	procs := flag.Int("procs", 3, "application processes")
	flag.Parse()

	sys, err := core.Build(core.Config{Nodes: *procs, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	iters := make([]int, *procs)
	for i := 0; i < *procs; i++ {
		i := i
		sys.Spawn(sys.Node(i), fmt.Sprintf("app%d", i), 0, func(sp *kern.Subprocess) {
			name := fmt.Sprintf("proc%d", i)
			vdb.RegisterProcess(sp, name)
			vdb.Var(name, "iter", func() string { return fmt.Sprint(iters[i]) })
			vdb.Var(name, "node", func() string { return sp.Node().Name() })
			for iters[i] = 0; iters[i] < 40; iters[i]++ {
				vdb.Point(sp, "mainloop")
				sp.Compute(sim.Microseconds(250))
			}
		})
	}

	d := vdb.New()
	// Attach mid-run, the way a VORX programmer would when a process
	// misbehaves.
	sys.K.After(sim.Milliseconds(3), func() {
		fmt.Printf("[%8.0f µs] $ vdb\n", sys.K.Now().Microseconds())
		fmt.Printf("processes: %v\n", d.Processes())
		target := "proc1"
		if err := d.Attach(target); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("attached to %s (already running)\n", target)
		d.Break("mainloop")
		fmt.Println("breakpoint set at mainloop")
		d.OnStop(func(loc string) {
			fmt.Printf("[%8.0f µs] %s stopped at %q\n", sys.K.Now().Microseconds(), target, loc)
			for _, v := range d.Vars() {
				val, _ := d.Print(v)
				fmt.Printf("    %s = %s\n", v, val)
			}
			fmt.Printf("    other processes still running: %v\n", otherProgress(iters, 1))
			sys.K.After(sim.Milliseconds(2), func() {
				fmt.Printf("[%8.0f µs] while stopped, others advanced: %v\n",
					sys.K.Now().Microseconds(), otherProgress(iters, 1))
				d.Clear("mainloop")
				fmt.Println("clearing breakpoint, continuing")
				if err := d.Continue(); err != nil {
					log.Fatal(err)
				}
			})
		})
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplication finished at %v; final iterations: %v\n", sys.K.Now(), iters)
}

func otherProgress(iters []int, except int) map[string]int {
	out := map[string]int{}
	for i, v := range iters {
		if i != except {
			out[fmt.Sprintf("proc%d", i)] = v
		}
	}
	return out
}
