package main

import (
	"flag"
	"fmt"
	"os"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vchan"
	"hpcvorx/internal/verify"
)

// runVChan demonstrates channel virtualization: many logical
// vchannels multiplexed onto a few broker lanes, with a forced live
// migration mid-stream. The balancer's decision log shows the seal →
// drain → re-place chain; the delivery check shows the stream arrived
// exactly once, in order, across the move.
func runVChan(args []string, tc *traceCtx) {
	fs := flag.NewFlagSet("vchan", flag.ExitOnError)
	nodes := fs.Int("nodes", 12, "processing nodes")
	tenants := fs.Int("tenants", 6, "vchannels to declare")
	brokers := fs.Int("brokers", 2, "broker nodes (picked via the resource manager)")
	lanes := fs.Int("lanes", 2, "physical lanes per broker")
	window := fs.Int("window", 8, "per-lane sliding window")
	msgs := fs.Int("msgs", 30, "messages per vchannel")
	move := fs.String("move", "t0", "vchannel to force-migrate mid-stream (empty: none)")
	moveAt := fs.String("moveat", "3ms", "when the forced migration fires")
	auto := fs.String("auto", "", "enable load-driven auto-rebalance with this sweep period, e.g. 2ms")
	horizon := fs.String("horizon", "60ms", "run horizon (balancer beacons tick forever)")
	doVerify := fs.Bool("verify", true, "attach the invariant checker; exit 1 on any violation")
	dump := fs.Bool("dump", false, "dump per-machine writer/reader/lane state at the end")
	seed := fs.Int64("seed", 1, "build seed")
	comm := commFlag(fs)
	serialOnly := shardsFlag(fs, "the vchannel broker demo drives the serial System")
	fs.Parse(args)
	serialOnly()

	durs := map[string]sim.Duration{}
	for name, s := range map[string]*string{"moveat": moveAt, "horizon": horizon} {
		d, err := fault.ParseDuration(*s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vorx: -%s: %v\n", name, err)
			os.Exit(1)
		}
		durs[name] = d
	}
	half := (*nodes - *brokers) / 2
	if half < 1 || *tenants < 1 {
		fmt.Fprintf(os.Stderr, "vorx: need at least %d nodes for %d brokers plus a producer and a consumer\n", *brokers+2, *brokers)
		os.Exit(1)
	}

	sys, err := core.Build(core.Config{Hosts: 1, Nodes: *nodes, Seed: *seed, Comm: comm()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	tc.arm(sys)
	// The application owns the endpoint nodes; the fabric asks the
	// resource manager for broker nodes out of what remains.
	res := resmgr.NewVORX(sys.K, *nodes)
	if _, err := res.Allocate("app", 2*half); err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	cfg := vchan.Config{BrokerCount: *brokers, LanesPerBroker: *lanes, Window: *window}
	if *auto != "" {
		d, err := fault.ParseDuration(*auto)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vorx: -auto: %v\n", err)
			os.Exit(1)
		}
		cfg.AutoEvery = d
	}
	fab := vchan.EnableWith(sys, cfg, res)
	type tenant struct {
		name       string
		prod, cons *core.Machine
	}
	ts := make([]tenant, *tenants)
	for i := range ts {
		ts[i] = tenant{name: fmt.Sprintf("t%d", i),
			prod: sys.Node(i % half), cons: sys.Node(half + i%half)}
		fab.Declare(ts[i].name, ts[i].prod, ts[i].cons)
	}
	var chk *verify.Checker
	if *doVerify {
		chk = verify.AttachAll(sys, fab)
	}
	fab.Start()

	got := make([][]int, *tenants)
	for i, tn := range ts {
		i, tn := i, tn
		sys.Spawn(tn.prod, "w/"+tn.name, 1, func(sp *kern.Subprocess) {
			w := fab.On(tn.prod).OpenWriter(sp, tn.name)
			for k := 0; k < *msgs; k++ {
				if err := w.Write(sp, 128, k); err != nil {
					return
				}
				sp.SleepFor(150 * sim.Microsecond)
			}
		})
		sys.Spawn(tn.cons, "r/"+tn.name, 1, func(sp *kern.Subprocess) {
			r := fab.On(tn.cons).OpenReader(sp, tn.name)
			for k := 0; k < *msgs; k++ {
				m, err := r.Read(sp)
				if err != nil {
					return
				}
				got[i] = append(got[i], m.Payload.(int))
			}
		})
	}

	bal := fab.Balancer()
	if *move != "" {
		name := *move
		sys.K.After(durs["moveat"], func() {
			node, _, _, ok := bal.Placement(name)
			if !ok {
				fmt.Fprintf(os.Stderr, "vorx: -move %s: unknown vchannel\n", name)
				return
			}
			for _, bn := range bal.BrokerNodes() {
				if bn != node {
					bal.MigrateTo(name, bn)
					return
				}
			}
		})
	}
	sys.RunFor(durs["horizon"])

	fmt.Printf("vchan on 1 host + %d nodes: %d vchannels over %d brokers x %d lanes, window %d\n\n",
		*nodes, *tenants, *brokers, *lanes, *window)
	fmt.Println("balancer decisions:")
	bal.Report(os.Stdout)
	fmt.Println("\nplacements:")
	for _, tn := range ts {
		node, lane, term, ok := bal.Placement(tn.name)
		if !ok {
			fmt.Printf("  %-4s unplaced\n", tn.name)
			continue
		}
		fmt.Printf("  %-4s node%d lane%d term=%d\n", tn.name, node, lane, term)
	}
	fmt.Println("\ndelivery:")
	clean := 0
	for i, tn := range ts {
		ordered := len(got[i]) == *msgs
		for k, v := range got[i] {
			if v != k {
				ordered = false
				break
			}
		}
		if ordered {
			clean++
		} else {
			fmt.Printf("  %s: %d/%d delivered\n", tn.name, len(got[i]), *msgs)
		}
	}
	fmt.Printf("  %d/%d vchannels delivered all %d messages exactly once, in order\n", clean, *tenants, *msgs)
	var stale, dups, retrans, fwd int
	for _, m := range sys.Machines() {
		s := fab.On(m)
		stale += s.StaleRefused
		dups += s.Dups
		retrans += s.Retransmits
		fwd += s.Forwarded
	}
	fmt.Printf("  balancer: %d migrations, %d ctrl retransmits, %d still active\n",
		bal.Migrations, bal.CtrlRetries, bal.ActiveMigrations())
	fmt.Printf("  data path: %d frames forwarded, %d producer retransmits, %d dups suppressed, %d stale-term frames refused\n",
		fwd, retrans, dups, stale)
	fmt.Printf("  virtual time at quiesce: %v\n", sys.K.Now())
	if *dump {
		fmt.Println("\nstate dump:")
		for _, m := range sys.Machines() {
			fab.On(m).Dump(os.Stdout)
		}
	}
	if chk != nil {
		fmt.Println()
		chk.Report(os.Stdout)
		if !chk.Ok() {
			os.Exit(1)
		}
	}
	tc.finish(sys)
}
