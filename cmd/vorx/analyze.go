package main

// vorx analyze — the latency observatory's CLI surface. Two modes:
//
//	vorx analyze -in flight.txt          offline: replay a flight-recorder
//	                                     dump through the critical-path
//	                                     analyzer
//	vorx analyze -demo heal [flags...]   live: run a demo with the analyzer
//	                                     and the virtual-time series sampler
//	                                     riding the tracer's forward sink
//
// Offline mode has no series: a flight dump carries events, not
// registry state, so sampling is a live-only feature. Everything the
// command prints is virtual-time derived and therefore deterministic —
// CI diffs double runs byte-for-byte.

import (
	"flag"
	"fmt"
	"os"

	"hpcvorx/internal/fault"
	"hpcvorx/internal/obs"
	"hpcvorx/internal/trace"
)

func cmdAnalyze(args []string) {
	fs := flag.NewFlagSet("analyze", flag.ExitOnError)
	in := fs.String("in", "", "analyze this flight-recorder dump (offline mode)")
	demo := fs.String("demo", "", "run and analyze a demo live: mix, ping, links, chaos, heal, vchan")
	series := fs.String("series", "500us", "virtual-time sampling period for the metrics series (live mode)")
	seriesRing := fs.Int("series-ring", 0, "keep only the newest N series samples (0 = unbounded)")
	csv := fs.String("csv", "", "write the sampled metrics series as CSV here (live mode)")
	om := fs.String("openmetrics", "", "write the metrics registry in OpenMetrics text format here (live mode)")
	top := fs.Int("top", 5, "show the N slowest writes with their component breakdowns")
	flight := fs.String("flight", "", "also write the run's flight-recorder dump here (live mode)")
	ring := fs.Int("ring", 0, "bounded trace memory: keep only the newest N events (live mode)")
	serialOnly := shardsFlag(fs, "the latency observatory rides the tracer, which sharded builds disable")
	fs.Parse(args)
	serialOnly()

	if (*in == "") == (*demo == "") {
		fmt.Fprintln(os.Stderr, "vorx analyze: need exactly one of -in <flight file> or -demo <name>")
		os.Exit(2)
	}

	if *in != "" {
		analyzeFlightFile(*in, *top)
		return
	}

	period, err := fault.ParseDuration(*series)
	if err != nil {
		fmt.Fprintf(os.Stderr, "vorx analyze: -series: %v\n", err)
		os.Exit(1)
	}
	tc := &traceCtx{
		flight:     *flight,
		ring:       *ring,
		analyze:    true,
		series:     period,
		seriesRing: *seriesRing,
		csv:        *csv,
		om:         *om,
		top:        *top,
	}
	rest := fs.Args()
	switch *demo {
	case "mix":
		runMix(rest, tc)
	case "ping":
		runPing(rest, tc)
	case "links":
		runLinks(rest, tc)
	case "chaos":
		runChaos(rest, tc)
	case "heal":
		runHeal(rest, tc)
	case "vchan":
		runVChan(rest, tc)
	default:
		fmt.Fprintf(os.Stderr, "vorx analyze: unknown demo %q (want mix, ping, links, chaos, heal, vchan)\n", *demo)
		os.Exit(2)
	}
}

func analyzeFlightFile(path string, top int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	events, err := trace.ReadFlight(f)
	f.Close()
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	fmt.Printf("analyze: %s\n", path)
	rep := obs.Analyze(events)
	rep.WriteTable(os.Stdout)
	rep.WriteTop(os.Stdout, top)
	if err := rep.Check(); err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
}
