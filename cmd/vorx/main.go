// Command vorx builds a simulated HPC/VORX installation and runs
// quick demonstrations against it.
//
// Usage:
//
//	vorx topo -hosts 10 -nodes 70     # describe the interconnect
//	vorx ping -size 64 -rounds 1000   # channel latency benchmark
//	vorx download -nodes 70 -tree     # program download timing
//	vorx alloc                        # allocation-policy walkthrough
//	vorx trace -demo heal -out t.json # any demo under the unified tracer
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"hpcvorx/internal/core"
	"hpcvorx/internal/dfs"
	"hpcvorx/internal/fault"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/netif"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/obs"
	"hpcvorx/internal/resmgr"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/stub"
	"hpcvorx/internal/super"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/verify"
	"hpcvorx/internal/vorxbench"
	"hpcvorx/internal/workload"
)

func usage() {
	fmt.Fprintf(os.Stderr, `usage: vorx <command> [flags]

commands:
  topo      describe the HPC interconnect for a machine size
  ping      run the channel latency benchmark (Table 2's workload)
  download  time program download to the node pool (paper §3.3)
  alloc     demonstrate the allocation policies (paper §3.1)
  links     run an all-to-one workload and show the hottest links
  mix       run a mixed workload and print the message-trace summary
  trace     run a demo with unified tracing on; emit Chrome JSON,
            a flight-recorder dump, and the metrics table
  analyze   latency observatory: attribute each write's virtual-time
            latency to wire/queue/interrupt/busy/retransmit/migration
            (-in replays a flight dump offline; -demo runs live with
            the series sampler, -csv/-openmetrics exports)
  chaos     replay a fault schedule and print the recovery report
            (-verify attaches the invariant checker; -sweep N replays
            N seeded partition/gray/crash schedules through it;
            -shardsweep N byte-diffs sharded vs serial outcomes)
  heal      crash a supervised node and watch checkpoint/restart heal it
            (-fence enables partition-tolerant quorum + fencing)
  vchan     multiplex vchannels over broker lanes and live-migrate one
            mid-stream (-auto enables load-driven rebalancing)
  bench     measure simulator performance; -json writes BENCH_<rev>.json

every command takes -shards N; only bench and chaos -shardsweep run a
simulation split over parallel shards (conservative lookahead), the
demos clamp to the serial kernel with a note
`)
	os.Exit(2)
}

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "topo":
		cmdTopo(os.Args[2:])
	case "ping":
		runPing(os.Args[2:], nil)
	case "download":
		cmdDownload(os.Args[2:])
	case "alloc":
		cmdAlloc(os.Args[2:])
	case "links":
		runLinks(os.Args[2:], nil)
	case "mix":
		runMix(os.Args[2:], nil)
	case "trace":
		cmdTrace(os.Args[2:])
	case "analyze":
		cmdAnalyze(os.Args[2:])
	case "chaos":
		runChaos(os.Args[2:], nil)
	case "heal":
		runHeal(os.Args[2:], nil)
	case "vchan":
		runVChan(os.Args[2:], nil)
	case "bench":
		cmdBench(os.Args[2:])
	default:
		usage()
	}
}

// commFlag registers -comm on fs and returns a resolver to call after
// parsing. The default is the classic stop-and-wait stack, so every
// command's output is unchanged unless -comm pipelined is asked for.
func commFlag(fs *flag.FlagSet) func() core.CommProfile {
	name := fs.String("comm", "classic", "communication profile: classic or pipelined")
	return func() core.CommProfile {
		switch *name {
		case "classic":
			return core.Classic()
		case "pipelined":
			return core.Pipelined()
		default:
			fmt.Fprintf(os.Stderr, "vorx: unknown -comm profile %q (want classic or pipelined)\n", *name)
			os.Exit(2)
			panic("unreachable")
		}
	}
}

// shardsFlag registers -shards on fs for a command whose demo runs on
// the serial kernel only: tracing, link faults, partitions, and the
// supervision oracle all need features the sharded build rejects
// (sharded systems keep tracers disabled and panic on link faults).
// Call the returned resolver after parsing: it warns when a split was
// asked for and the command falls back to one shard — the same honest
// clamp `vorx bench` applies to its Workers pool on small hosts.
// Commands that genuinely shard (`vorx bench`, `vorx chaos
// -shardsweep`) register their own -shards instead.
func shardsFlag(fs *flag.FlagSet, why string) func() {
	n := fs.Int("shards", 1, "parallel simulation shards (this command clamps to 1)")
	return func() {
		if *n > 1 {
			fmt.Fprintf(os.Stderr, "vorx: -shards %d: %s; running the serial kernel\n", *n, why)
		}
	}
}

// traceCtx carries the `vorx trace` options into a demo run. A nil
// *traceCtx leaves the system tracer disabled, so the plain commands
// are byte-identical to their untraced behaviour.
type traceCtx struct {
	out     string // Chrome trace_event JSON path
	flight  string // flight-recorder text path
	ring    int    // bounded-memory mode: keep newest N events
	metrics bool   // print the metrics table

	// Latency-observatory options (`vorx analyze -demo ...`). The
	// analyzer and sampler ride the tracer's forward sink: pure
	// host-side observers, so armed runs stay byte-identical to
	// plain traced runs.
	analyze    bool
	series     sim.Duration // sampling period (0 = sampler default)
	seriesRing int          // keep newest N series samples
	csv        string       // series CSV path
	om         string       // OpenMetrics registry dump path
	top        int          // slowest-writes breakdown depth
	an         *obs.Analyzer
	smp        *obs.Sampler
}

// arm enables tracing on a freshly built system. Call before any
// traffic runs.
func (tc *traceCtx) arm(sys *core.System) {
	if tc == nil {
		return
	}
	sys.Trace.Enable()
	if tc.ring > 0 {
		sys.Trace.SetLimit(tc.ring)
	}
	if tc.analyze {
		tc.an = obs.NewAnalyzer()
		tc.smp = obs.NewSampler(sys.Trace.Metrics(), tc.series)
		if tc.seriesRing > 0 {
			tc.smp.SetLimit(tc.seriesRing)
		}
		sys.Trace.SetForward(obs.Tee(tc.an, tc.smp))
	}
}

// finish writes the requested trace artifacts and the metrics table.
func (tc *traceCtx) finish(sys *core.System) {
	if tc == nil {
		return
	}
	fmt.Println()
	fmt.Printf("trace: %d events recorded", sys.Trace.Len())
	if d := sys.Trace.Dropped(); d > 0 {
		fmt.Printf(" (%d older events dropped by -ring %d)", d, tc.ring)
	}
	fmt.Println()
	if tc.out != "" {
		f, err := os.Create(tc.out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vorx:", err)
			os.Exit(1)
		}
		if err := sys.Trace.WriteChrome(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vorx:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: Chrome trace_event JSON -> %s (open in Perfetto or chrome://tracing)\n", tc.out)
	}
	if tc.flight != "" {
		f, err := os.Create(tc.flight)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vorx:", err)
			os.Exit(1)
		}
		if err := sys.Trace.WriteFlight(f); err == nil {
			err = f.Close()
		}
		if err != nil {
			fmt.Fprintln(os.Stderr, "vorx:", err)
			os.Exit(1)
		}
		fmt.Printf("trace: flight recorder -> %s\n", tc.flight)
	}
	if tc.metrics {
		fmt.Println("\nmetrics at quiesce:")
		sys.Trace.Metrics().WriteTable(os.Stdout)
	}
	if tc.analyze {
		tc.smp.Flush(sys.K.Now())
		fmt.Println()
		rep := tc.an.Report()
		rep.WriteTable(os.Stdout)
		rep.WriteTop(os.Stdout, tc.top)
		fmt.Printf("series: %d samples at %v period, %d instruments\n",
			tc.smp.Len(), tc.smp.Period(), len(sys.Trace.Metrics().Snapshot()))
		if tc.csv != "" {
			writeArtifact(tc.csv, "metrics series CSV", tc.smp.WriteCSV)
		}
		if tc.om != "" {
			writeArtifact(tc.om, "OpenMetrics registry", func(w io.Writer) error {
				return obs.WriteOpenMetrics(w, sys.Trace.Metrics())
			})
		}
		if err := rep.Check(); err != nil {
			fmt.Fprintln(os.Stderr, "vorx:", err)
			os.Exit(1)
		}
	}
}

// writeArtifact creates path and streams one export into it.
func writeArtifact(path, what string, write func(io.Writer) error) {
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	if err := write(f); err == nil {
		err = f.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	// Stderr, so stdout stays a pure function of virtual time even
	// when artifact paths differ between otherwise identical runs.
	fmt.Fprintf(os.Stderr, "analyze: %s -> %s\n", what, path)
}

func cmdTrace(args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	demo := fs.String("demo", "mix", "demo to trace: mix, ping, links, chaos, heal, vchan")
	out := fs.String("out", "", "write Chrome trace_event JSON here")
	flight := fs.String("flight", "", "write the flight-recorder text dump here")
	ring := fs.Int("ring", 0, "bounded memory: keep only the newest N events (0 = unbounded)")
	metrics := fs.Bool("metrics", true, "print the metrics table after the run")
	fs.Parse(args)
	tc := &traceCtx{out: *out, flight: *flight, ring: *ring, metrics: *metrics}
	rest := fs.Args()
	switch *demo {
	case "mix":
		runMix(rest, tc)
	case "ping":
		runPing(rest, tc)
	case "links":
		runLinks(rest, tc)
	case "chaos":
		runChaos(rest, tc)
	case "heal":
		runHeal(rest, tc)
	case "vchan":
		runVChan(rest, tc)
	default:
		fmt.Fprintf(os.Stderr, "vorx trace: unknown demo %q (want mix, ping, links, chaos, heal, vchan)\n", *demo)
		os.Exit(2)
	}
}

func cmdAlloc(args []string) {
	fs := flag.NewFlagSet("alloc", flag.ExitOnError)
	serialOnly := shardsFlag(fs, "the allocation walkthrough replays experiment E9 serially")
	fs.Parse(args)
	serialOnly()
	vorxbench.E9Allocation().Format(os.Stdout)
}

func cmdTopo(args []string) {
	fs := flag.NewFlagSet("topo", flag.ExitOnError)
	hosts := fs.Int("hosts", 10, "host workstations")
	nodes := fs.Int("nodes", 70, "processing nodes")
	shards := fs.Int("shards", 0, "also print the cluster-to-shard partition for this shard count (0 = skip)")
	fs.Parse(args)
	total := *hosts + *nodes
	var (
		tp  *topo.Topology
		err error
	)
	if total <= topo.PortsPerCluster {
		tp, err = topo.SingleCluster(total)
	} else {
		tp, err = topo.IncompleteHypercube((total+3)/4, 4)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	fmt.Println(tp)
	fmt.Printf("figure 1 layout: %d workstations + %d processing nodes on one HPC\n", *hosts, *nodes)
	fmt.Println()
	fmt.Println("        workstations                 processing node pool")
	fmt.Println("   [ws0] [ws1] ... [wsH]        [n0] [n1] [n2] ...... [nN]")
	fmt.Println("      \\    |    /                  \\   |    |        /")
	fmt.Println("   +--------------------- HPC interconnect ---------------+")
	fmt.Printf("   |  %d self-routing 12-port clusters, dim-%d incomplete   \n", tp.Clusters(), tp.Dimension())
	fmt.Println("   |  hypercube, 160 Mbit/s ports, hardware flow control   ")
	fmt.Println("   +-------------------------------------------------------+")
	for c := 0; c < tp.Clusters() && c < 8; c++ {
		fmt.Printf("cluster %d: neighbors %v, %d endpoint port(s)\n",
			c, tp.Neighbors(topo.ClusterID(c)), len(tp.EndpointsOn(topo.ClusterID(c))))
	}
	if tp.Clusters() > 8 {
		fmt.Printf("... and %d more clusters\n", tp.Clusters()-8)
	}
	if *shards > 0 {
		part := topo.PartitionClusters(tp, *shards)
		fmt.Printf("\nsharded simulation partition (-shards %d -> %d):\n", *shards, part.Shards())
		for s := 0; s < part.Shards(); s++ {
			var lo, hi = -1, -1
			for c := 0; c < tp.Clusters(); c++ {
				if part.OfCluster(topo.ClusterID(c)) == s {
					if lo < 0 {
						lo = c
					}
					hi = c
				}
			}
			fmt.Printf("  shard %d: clusters %d..%d\n", s, lo, hi)
		}
	}
}

func runPing(args []string, tc *traceCtx) {
	fs := flag.NewFlagSet("ping", flag.ExitOnError)
	size := fs.Int("size", 4, "message size in bytes")
	rounds := fs.Int("rounds", 1000, "messages to send")
	comm := commFlag(fs)
	serialOnly := shardsFlag(fs, "the two-node latency demo is a single cluster with nothing to shard")
	fs.Parse(args)
	serialOnly()
	sys, err := core.Build(core.Config{Nodes: 2, Seed: 1, Comm: comm()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	tc.arm(sys)
	us := workload.ChannelLatency(sys, sys.Node(0), sys.Node(1), *size, *rounds)
	fmt.Printf("channel latency, %d-byte messages over %d rounds: %.1f µs/msg\n", *size, *rounds, us)
	fmt.Printf("(paper, Table 2: 303/341/474/997 µs at 4/64/256/1024 bytes)\n")
	tc.finish(sys)
}

func runLinks(args []string, tc *traceCtx) {
	fs := flag.NewFlagSet("links", flag.ExitOnError)
	nodes := fs.Int("nodes", 20, "processing nodes")
	msgs := fs.Int("msgs", 10, "messages per sender")
	comm := commFlag(fs)
	serialOnly := shardsFlag(fs, "per-link statistics come from the serial fabric")
	fs.Parse(args)
	serialOnly()
	sys, err := core.Build(core.Config{Nodes: *nodes, Seed: 1, Comm: comm()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	tc.arm(sys)
	mk := workload.ManyToOne(sys, 800, *msgs)
	fmt.Printf("all-to-one workload on %d nodes finished in %v\n", *nodes, mk)
	fmt.Printf("%-14s %10s %10s\n", "LINK", "MESSAGES", "BUSY")
	stats := sys.IC.LinkStats()
	// Show the ten busiest.
	sort.Slice(stats, func(i, j int) bool { return stats[i].Busy > stats[j].Busy })
	for i, ls := range stats {
		if i >= 10 || ls.Messages == 0 {
			break
		}
		fmt.Printf("%-14s %10d %10v\n", ls.Name, ls.Messages, ls.Busy)
	}
	hot := sys.IC.HottestLink()
	fmt.Printf("hottest: %s — the sink's down-link, as expected for many-to-one\n", hot.Name)
	tc.finish(sys)
}

func runMix(args []string, tc *traceCtx) {
	fs := flag.NewFlagSet("mix", flag.ExitOnError)
	nodes := fs.Int("nodes", 6, "processing nodes")
	comm := commFlag(fs)
	serialOnly := shardsFlag(fs, "the message-trace summary needs the serial kernel")
	fs.Parse(args)
	serialOnly()
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: *nodes, Seed: 1, Comm: comm()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	tc.arm(sys)
	mt := netif.NewMsgTrace()
	for _, m := range sys.Machines() {
		mt.Attach(m.IF)
	}
	_ = workload.ManyToOne(sys, 700, 6)
	res := workload.OpenStorm(sys, 3)
	fmt.Printf("workload done (storm of %d opens included)\n\n", res.Opens)
	mt.Summarize(os.Stdout)
	tc.finish(sys)
}

// demoSchedule is the built-in fault schedule replayed when no
// -schedule file is given: a cube-link outage with repair, plus a node
// crash with a later cold restart.
const demoSchedule = `# built-in demo storm
1ms   link-down 0 2
8ms   link-up 0 2
2ms   crash node6
12ms  restart node6
`

func runChaos(args []string, tc *traceCtx) {
	fs := flag.NewFlagSet("chaos", flag.ExitOnError)
	hosts := fs.Int("hosts", 2, "host workstations")
	nodes := fs.Int("nodes", 14, "processing nodes")
	seed := fs.Int64("seed", 1, "fault-engine seed")
	msgs := fs.Int("msgs", 24, "messages per channel pair")
	schedFile := fs.String("schedule", "", "fault schedule file (default: built-in demo)")
	detect := fs.String("detect", "", "oracle crash-detection delay, e.g. 500us (default 2ms)")
	doVerify := fs.Bool("verify", false, "attach the invariant checker; exit 1 on any violation")
	sweepN := fs.Int("sweep", 0, "run N seeded schedules (partitions, grays, crashes) plus N rebalance storms through the checker")
	shardSweepN := fs.Int("shardsweep", 0, "run N seeded crash/gray schedules at shards=1 and -shards and byte-diff the outcomes; exit 1 on any divergence")
	shards := fs.Int("shards", 4, "parallel shard count the -shardsweep runs split over (schedule replay itself clamps to the serial kernel)")
	retries := fs.Int("retries", 3, "channel write retry budget; 0 retries forever (lets writers survive a partition)")
	comm := commFlag(fs)
	fs.Parse(args)
	shardsSet := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "shards" {
			shardsSet = true
		}
	})

	if *shardSweepN > 0 {
		sw := vorxbench.RunShardSweep(*seed, *shardSweepN, *shards)
		sw.Format(os.Stdout)
		if !sw.OK() {
			os.Exit(1)
		}
		return
	}
	if shardsSet && *shards > 1 {
		// Schedule replay itself always runs the serial kernel, but an
		// explicit -shards asks for the sharded restriction: the fault
		// DSL rejects link and partition ops up front, naming the
		// offending schedule line, instead of hitting the fabric's
		// runtime panic mid-run.
		fmt.Fprintf(os.Stderr, "vorx: schedule replay runs the serial kernel; validating the schedule for %d shards\n", *shards)
	}

	if *sweepN > 0 {
		sw := vorxbench.RunChaosSweep(*seed, *sweepN)
		sw.Format(os.Stdout)
		st := vorxbench.RunStormSweep(*seed, *sweepN)
		st.Format(os.Stdout)
		if sw.Violations > 0 || st.Violations > 0 {
			os.Exit(1)
		}
		return
	}

	text := demoSchedule
	if *schedFile != "" {
		b, err := os.ReadFile(*schedFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vorx:", err)
			os.Exit(1)
		}
		text = string(b)
	}
	ops, err := fault.ParseSchedule(strings.NewReader(text))
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}

	sys, err := core.Build(core.Config{Hosts: *hosts, Nodes: *nodes, Seed: 1, Comm: comm()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	tc.arm(sys)
	var chk *verify.Checker
	if *doVerify {
		chk = verify.Attach(sys)
	}
	res := resmgr.NewVORX(sys.K, *nodes)
	if _, err := res.Allocate("alice", *nodes); err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	eng := fault.New(sys.K, *seed)
	eng.MaxRetries = *retries
	eng.Bind(sys)
	if shardsSet {
		eng.SetShards(*shards)
	}
	eng.BindResmgr(res)
	if *detect != "" {
		d, err := fault.ParseDuration(*detect)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vorx:", err)
			os.Exit(1)
		}
		eng.DetectDelay = d
	}
	if *hosts > 0 {
		replicas := 2
		if *hosts < replicas {
			replicas = *hosts
		}
		eng.BindDFS(dfs.New(sys, sys.Hosts(), replicas))
	}
	if err := eng.Apply(ops); err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}

	// Traffic: every node in the first half streams to a partner in the
	// second half, so the schedule's faults hit live channels.
	npairs := *nodes / 2
	recv := make([]int, npairs)
	werrs := make([]error, npairs)
	for pi := 0; pi < npairs; pi++ {
		pi := pi
		name := fmt.Sprintf("chaos%d", pi)
		wm, rm := sys.Node(pi), sys.Node(pi+npairs)
		sys.Spawn(wm, "writer", 0, func(sp *kern.Subprocess) {
			ch := wm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < *msgs; i++ {
				if err := ch.Write(sp, 256, i); err != nil {
					werrs[pi] = err
					return
				}
			}
		})
		sys.Spawn(rm, "reader", 0, func(sp *kern.Subprocess) {
			ch := rm.Chans.Open(sp, name, objmgr.OpenAny)
			for i := 0; i < *msgs; i++ {
				if _, ok := ch.Read(sp); !ok {
					return
				}
				recv[pi]++
			}
		})
	}
	if err := sys.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}

	fmt.Printf("chaos on %d hosts + %d nodes, seed %d, %d channel pairs x %d messages\n\n",
		*hosts, *nodes, *seed, npairs, *msgs)
	eng.Report(os.Stdout)
	fmt.Println("\nrecovery report:")
	clean := 0
	for pi := 0; pi < npairs; pi++ {
		switch {
		case werrs[pi] != nil:
			fmt.Printf("  pair %d (node%d->node%d): %d/%d delivered, writer error: %v\n",
				pi, pi, pi+npairs, recv[pi], *msgs, werrs[pi])
		case recv[pi] != *msgs:
			fmt.Printf("  pair %d (node%d->node%d): %d/%d delivered, reader saw peer death\n",
				pi, pi, pi+npairs, recv[pi], *msgs)
		default:
			clean++
		}
	}
	fmt.Printf("  %d/%d pairs delivered all %d messages exactly once\n", clean, npairs, *msgs)
	st := sys.IC.Stats()
	fmt.Printf("  interconnect: %d messages delivered, %d rerouted around failed links, %d cube links still down\n",
		st.MessagesDelivered, st.Reroutes, sys.IC.DownCubeLinks())
	retrans, deaths := 0, 0
	for _, m := range sys.Machines() {
		retrans += m.Chans.TimeoutRetransmits
		deaths += m.Chans.PeerDeaths
	}
	fmt.Printf("  channels: %d timeout retransmits, %d peer-death failures\n", retrans, deaths)
	fmt.Printf("  resmgr: %d force-frees", res.ForceFrees)
	freed := []string{}
	for i := 0; i < *nodes; i++ {
		if res.OwnerOf(resmgr.NodeID(i)) == "" {
			freed = append(freed, fmt.Sprintf("node%d", i))
		}
	}
	if len(freed) > 0 {
		fmt.Printf(" (reclaimed: %s)", strings.Join(freed, " "))
	}
	fmt.Println()
	fmt.Printf("  virtual time at quiesce: %v\n", sys.K.Now())
	if chk != nil {
		fmt.Println()
		chk.Report(os.Stdout)
		if !chk.Ok() {
			os.Exit(1)
		}
	}
	tc.finish(sys)
}

func runHeal(args []string, tc *traceCtx) {
	fs := flag.NewFlagSet("heal", flag.ExitOnError)
	nodes := fs.Int("nodes", 10, "processing nodes")
	pairs := fs.Int("pairs", 3, "supervised writer/reader pairs")
	msgs := fs.Int("msgs", 24, "messages per pair")
	crash := fs.String("crash", "2ms", "when the victim (pair 0's reader node) dies")
	hb := fs.String("hb", "500us", "heartbeat period")
	confirm := fs.String("confirm", "2ms", "heartbeat silence before death is confirmed")
	ckpt := fs.String("ckpt", "1ms", "checkpoint interval")
	horizon := fs.String("horizon", "80ms", "supervision horizon (beacons stop here)")
	fence := fs.Bool("fence", false, "partition-tolerant supervision: quorum-gated confirms plus incarnation fencing")
	comm := commFlag(fs)
	serialOnly := shardsFlag(fs, "the supervision demo drives the serial System")
	fs.Parse(args)
	serialOnly()
	if *pairs < 1 || *nodes < 2*(*pairs)+1 {
		fmt.Fprintf(os.Stderr, "vorx: need at least %d nodes for %d pairs plus a spare\n", 2*(*pairs)+1, *pairs)
		os.Exit(1)
	}
	durs := map[string]sim.Duration{}
	for name, s := range map[string]*string{"crash": crash, "hb": hb, "confirm": confirm, "ckpt": ckpt, "horizon": horizon} {
		d, err := fault.ParseDuration(*s)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vorx: -%s: %v\n", name, err)
			os.Exit(1)
		}
		durs[name] = d
	}

	sys, err := core.Build(core.Config{Hosts: 1, Nodes: *nodes, Seed: 1, Comm: comm()})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	tc.arm(sys)
	res := resmgr.NewVORX(sys.K, *nodes)
	if _, err := res.Allocate("app", 2*(*pairs)); err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	cfg := super.Config{
		HeartbeatEvery:  durs["hb"],
		ConfirmAfter:    durs["confirm"],
		CheckpointEvery: durs["ckpt"],
		Fence:           *fence,
	}
	sup := super.New(sys, sys.Host(0), res, cfg)

	eng := fault.New(sys.K, 1)
	eng.Bind(sys)
	eng.BindResmgr(res)
	eng.SetOracle(false) // the supervisor owns detection
	eng.CrashNodeAt(durs["crash"], *pairs)

	finals := make([][]string, *pairs)
	for pi := 0; pi < *pairs; pi++ {
		pi := pi
		name := fmt.Sprintf("heal%d", pi)
		writer := sup.NewTask(fmt.Sprintf("writer%d", pi), sys.Node(pi), 0, nil)
		reader := sup.NewTask(fmt.Sprintf("reader%d", pi), sys.Node(*pairs+pi), 0, nil)
		writer.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
			hs := super.RestoreStream(name, inc.State)
			ch := inc.Chan(name)
			if ch == nil {
				ch = inc.Machine.Chans.Open(sp, name, objmgr.OpenAny)
				writer.Attach(ch)
			}
			writer.SetCheckpointer(hs)
			for hs.Written < *msgs {
				if err := ch.Write(sp, 256, fmt.Sprintf("m%d", hs.Written)); err != nil {
					return
				}
				hs.Written++
				sp.SleepFor(300 * sim.Microsecond)
			}
		})
		reader.SetBody(func(sp *kern.Subprocess, inc *super.Incarnation) {
			hs := super.RestoreStream(name, inc.State)
			ch := inc.Chan(name)
			if ch == nil {
				ch = inc.Machine.Chans.Open(sp, name, objmgr.OpenAny)
				reader.Attach(ch)
			}
			reader.SetCheckpointer(hs)
			for hs.Read < *msgs {
				m, ok := ch.Read(sp)
				if !ok {
					return // crashed mid-read; the next incarnation resumes
				}
				hs.Log = append(hs.Log, m.Payload.(string))
				hs.Read++
			}
			finals[pi] = hs.Log
		})
		writer.Launch()
		reader.Launch()
	}

	sup.Start()
	sup.StopAt(durs["horizon"])
	if err := sys.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}

	fmt.Printf("heal on 1 host + %d nodes: %d supervised pairs x %d messages, reader node%d dies at %v\n\n",
		*nodes, *pairs, *msgs, *pairs, durs["crash"])
	sup.Report(os.Stdout)
	fmt.Println("\nexactly-once verification:")
	clean := 0
	for pi := 0; pi < *pairs; pi++ {
		want := make([]string, *msgs)
		for i := range want {
			want[i] = fmt.Sprintf("m%d", i)
		}
		switch {
		case finals[pi] == nil:
			fmt.Printf("  pair %d: reader never finished\n", pi)
		case strings.Join(finals[pi], ",") != strings.Join(want, ","):
			fmt.Printf("  pair %d: stream corrupted: %s\n", pi, strings.Join(finals[pi], ","))
		default:
			clean++
		}
	}
	fmt.Printf("  %d/%d pairs delivered all %d messages exactly once, in order\n", clean, *pairs, *msgs)
	if confirmRec, ok := sup.FirstRecord("confirm"); ok {
		if restartRec, ok2 := sup.FirstRecord("restart"); ok2 {
			fmt.Printf("  unavailability: crash %v -> confirm %v -> restart %v (window %v)\n",
				durs["crash"], confirmRec.At, restartRec.At,
				restartRec.At.Sub(sim.Time(0))-durs["crash"])
		}
	}
	fmt.Printf("  supervisor: %d heartbeats, %d checkpoints, %d restarts, %d rebinds\n",
		sup.Heartbeats, sup.Checkpoints, sup.Restarts, sup.Rebinds)
	fmt.Printf("  resmgr: %d force-frees, spare owner: %q\n", res.ForceFrees, "super")
	fmt.Printf("  virtual time at quiesce: %v\n", sys.K.Now())
	tc.finish(sys)
}

func cmdDownload(args []string) {
	fs := flag.NewFlagSet("download", flag.ExitOnError)
	nodes := fs.Int("nodes", 70, "processes to start")
	tree := fs.Bool("tree", false, "use the shared-stub tree download")
	serialOnly := shardsFlag(fs, "the download demo drives the serial System")
	fs.Parse(args)
	serialOnly()
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: *nodes, Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vorx:", err)
		os.Exit(1)
	}
	mode := stub.PerProcess
	if *tree {
		mode = stub.SharedTree
	}
	app := stub.Launch(sys, sys.Host(0), sys.Nodes(), stub.DefaultImage(), mode, nil)
	sys.RunFor(sim.Seconds(300))
	if !app.Ready() {
		fmt.Fprintln(os.Stderr, "vorx: download did not complete")
		os.Exit(1)
	}
	fmt.Printf("%s download of %d processes: %.2f s (paper: 12 s per-process, 2 s tree, at 70)\n",
		mode, *nodes, app.StartedAt.Seconds())
	sys.Shutdown()
}
