package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"hpcvorx/internal/core"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/vorxbench"
	"hpcvorx/internal/workload"
)

// benchReport is the schema of BENCH_<rev>.json: one data point on the
// simulator's own performance trajectory. Everything here measures the
// host (wall clock, allocations) — virtual time is untouched by
// definition, which is what makes the byte-identity fields meaningful.
type benchReport struct {
	Rev        string `json:"rev"`
	GoVersion  string `json:"go_version"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`

	// Kernel microbenchmark: a self-rescheduling timer chain, the
	// tightest loop the event engine has.
	KernelEvents        int     `json:"kernel_events"`
	KernelNsPerEvent    float64 `json:"kernel_ns_per_event"`
	KernelEventsPerSec  float64 `json:"kernel_events_per_sec"`
	KernelBytesPerEvent float64 `json:"kernel_bytes_per_event"`

	// Message macrobenchmark: the standard all-to-one workload through
	// the full stack (channels → netif → hpc → interrupt → channels).
	MsgRuns        int     `json:"msg_runs"`
	MsgCount       int     `json:"msg_count"`
	MsgPerSec      float64 `json:"msgs_per_sec"`
	MsgNsPerMsg    float64 `json:"ns_per_msg"`
	MsgBytesPerMsg float64 `json:"bytes_per_msg"`

	// Suite replication: the deterministic vorxbench experiments run
	// serially and across a worker pool; the outputs must match byte
	// for byte.
	SuiteIDs           string  `json:"suite_ids"`
	SuiteWorkers       int     `json:"suite_workers"`
	SuiteSerialMs      float64 `json:"suite_serial_ms"`
	SuiteParallelMs    float64 `json:"suite_parallel_ms"`
	SuiteSpeedup       float64 `json:"suite_speedup"`
	SuiteByteIdentical bool    `json:"suite_byte_identical"`

	// Seeded replications of the macro workload, serial vs pool.
	ReplSeeds         int     `json:"repl_seeds"`
	ReplSerialMs      float64 `json:"repl_serial_ms"`
	ReplParallelMs    float64 `json:"repl_parallel_ms"`
	ReplSpeedup       float64 `json:"repl_speedup"`
	ReplByteIdentical bool    `json:"repl_byte_identical"`

	// Classic vs pipelined comm profile on the large-write stream
	// (single channel, 8 KB writes): host cost per delivered message
	// and the virtual-time speedup of the windowed fast path. Fewer
	// host events per message means the pipelined protocol is cheaper
	// to simulate, not just faster in virtual time.
	CommStreamMsgs            int     `json:"comm_stream_msgs"`
	CommClassicNsPerMsg       float64 `json:"comm_classic_ns_per_msg"`
	CommPipelinedNsPerMsg     float64 `json:"comm_pipelined_ns_per_msg"`
	CommClassicEventsPerMsg   float64 `json:"comm_classic_events_per_msg"`
	CommPipelinedEventsPerMsg float64 `json:"comm_pipelined_events_per_msg"`
	CommVirtualSpeedup        float64 `json:"comm_virtual_speedup"`

	// Sharded kernel: one simulation split over shard threads with
	// route-aware conservative lookahead (E19's cross-cluster
	// workload), serial vs a sweep of shard counts. Speedup is honest
	// wall clock — best of shardReps runs per count, to damp scheduler
	// noise — and ShardGOMAXPROCS/ShardNumCPU record how many real
	// cores backed it: on a host without spare cores the shards
	// serialize and the synchronization is pure overhead, exactly as
	// the suite's Workers clamp reports. The legacy shard_* fields
	// mirror the ShardRows entry for -shards.
	ShardGOMAXPROCS    int        `json:"shard_gomaxprocs"`
	ShardNumCPU        int        `json:"shard_num_cpu"`
	ShardRows          []shardRow `json:"shard_rows"`
	ShardShards        int        `json:"shard_shards"`
	ShardEvents        uint64     `json:"shard_events"`
	ShardCrossPosts    uint64     `json:"shard_cross_posts"`
	ShardHandoffs      int        `json:"shard_handoffs"`
	ShardSerialMs      float64    `json:"shard_serial_ms"`
	ShardParallelMs    float64    `json:"shard_parallel_ms"`
	ShardSpeedup       float64    `json:"shard_speedup"`
	ShardByteIdentical bool       `json:"shard_byte_identical"`
}

// shardRow is one shard count's measurement in the sweep: throughput
// against the serial baseline plus the sim.sync.* counters that price
// the conservative synchronization buying it.
type shardRow struct {
	Shards           int     `json:"shards"`
	Events           uint64  `json:"events"`
	CrossPosts       uint64  `json:"cross_posts"`
	Handoffs         int     `json:"handoffs"`
	WallMs           float64 `json:"wall_ms"`
	Speedup          float64 `json:"speedup"`
	HorizonPublishes uint64  `json:"horizon_publishes"`
	NullMessages     uint64  `json:"null_messages"`
	Wakeups          uint64  `json:"wakeups"`
	DrainRuns        uint64  `json:"drain_runs"`
	AvgDrainRun      float64 `json:"avg_drain_run"`
	ByteIdentical    bool    `json:"byte_identical"`
}

func cmdBench(args []string) {
	fs := flag.NewFlagSet("bench", flag.ExitOnError)
	rev := fs.String("rev", "dev", "revision label; -json writes BENCH_<rev>.json")
	jsonOut := fs.Bool("json", false, "write BENCH_<rev>.json (or -out) in addition to the text report")
	out := fs.String("out", "", "override the JSON output path")
	events := fs.Int("events", 2_000_000, "kernel microbenchmark event count")
	msgRuns := fs.Int("msgruns", 20, "repetitions of the all-to-one message macrobenchmark")
	suite := fs.String("suite", "", "comma-separated suite ids (default: all deterministic experiments)")
	seeds := fs.Int("seeds", 8, "seeded replications of the macro workload")
	workers := fs.Int("workers", 0, "worker-pool size for parallel replication; 0 = one per CPU")
	shards := fs.Int("shards", 4, "shard count for the sharded-kernel benchmark")
	fs.Parse(args)

	r := benchReport{
		Rev:        *rev,
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		NumCPU:     runtime.NumCPU(),
	}

	// 1. Event engine: a single self-rescheduling timer, the pattern
	// every sleeping proc and protocol timeout reduces to.
	r.KernelEvents = *events
	wall, bytes := benchKernel(*events)
	r.KernelNsPerEvent = float64(wall.Nanoseconds()) / float64(*events)
	r.KernelEventsPerSec = float64(*events) / wall.Seconds()
	r.KernelBytesPerEvent = bytes / float64(*events)
	fmt.Printf("kernel:      %d events in %v  (%.1f ns/event, %.2fM events/s, %.1f B/event)\n",
		*events, wall.Round(time.Millisecond), r.KernelNsPerEvent, r.KernelEventsPerSec/1e6, r.KernelBytesPerEvent)

	// 2. Full message stack: all-to-one on 20 nodes, 800 B x 10 per
	// sender, fresh share-nothing system per run.
	const msgNodes, msgSize, msgPer = 20, 800, 10
	perRun := (msgNodes - 1) * msgPer
	r.MsgRuns = *msgRuns
	r.MsgCount = perRun * *msgRuns
	wall, bytes = benchMessages(*msgRuns, msgNodes, msgSize, msgPer)
	r.MsgPerSec = float64(r.MsgCount) / wall.Seconds()
	r.MsgNsPerMsg = float64(wall.Nanoseconds()) / float64(r.MsgCount)
	r.MsgBytesPerMsg = bytes / float64(r.MsgCount)
	fmt.Printf("messages:    %d app messages in %v  (%.0f ns/msg, %.0fk msgs/s, %.0f B/msg)\n",
		r.MsgCount, wall.Round(time.Millisecond), r.MsgNsPerMsg, r.MsgPerSec/1e3, r.MsgBytesPerMsg)

	// 3. Classic vs pipelined comm profile: the same large-write stream
	// through both stacks.
	const streamRuns, streamSize, streamMsgs = 10, 8192, 64
	cWall, cEvents, cVirt := benchStream(streamRuns, streamSize, streamMsgs, core.Classic())
	pWall, pEvents, pVirt := benchStream(streamRuns, streamSize, streamMsgs, core.Pipelined())
	n := float64(streamRuns * streamMsgs)
	r.CommStreamMsgs = streamRuns * streamMsgs
	r.CommClassicNsPerMsg = float64(cWall.Nanoseconds()) / n
	r.CommPipelinedNsPerMsg = float64(pWall.Nanoseconds()) / n
	r.CommClassicEventsPerMsg = float64(cEvents) / n
	r.CommPipelinedEventsPerMsg = float64(pEvents) / n
	r.CommVirtualSpeedup = cVirt.Seconds() / pVirt.Seconds()
	fmt.Printf("comm:        stream %dx%dB  classic %.0f ns/msg %.1f events/msg, pipelined %.0f ns/msg %.1f events/msg  (virtual %.2fx)\n",
		streamMsgs, streamSize, r.CommClassicNsPerMsg, r.CommClassicEventsPerMsg,
		r.CommPipelinedNsPerMsg, r.CommPipelinedEventsPerMsg, r.CommVirtualSpeedup)

	// 4. Suite replication, serial vs worker pool.
	ids := vorxbench.DeterministicIDs()
	if *suite != "" {
		ids = strings.Split(*suite, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	r.SuiteIDs = strings.Join(ids, ",")
	r.SuiteWorkers = vorxbench.Workers(*workers)
	serialOut, serialWall := vorxbench.TimedRun(ids, 1)
	parOut, parWall := serialOut, serialWall
	if r.SuiteWorkers > 1 {
		// With one effective worker the pool would take the serial path
		// anyway; rerunning it only measures wall-clock noise.
		parOut, parWall = vorxbench.TimedRun(ids, r.SuiteWorkers)
	}
	r.SuiteSerialMs = float64(serialWall.Microseconds()) / 1000
	r.SuiteParallelMs = float64(parWall.Microseconds()) / 1000
	r.SuiteSpeedup = serialWall.Seconds() / parWall.Seconds()
	r.SuiteByteIdentical = serialOut == parOut
	fmt.Printf("suite:       %d experiments  serial %v, %d workers %v  (%.2fx, byte-identical: %v)\n",
		len(ids), serialWall.Round(time.Millisecond), r.SuiteWorkers, parWall.Round(time.Millisecond),
		r.SuiteSpeedup, r.SuiteByteIdentical)

	// 5. Seeded replications of the macro workload.
	ss := make([]int64, *seeds)
	for i := range ss {
		ss[i] = int64(i + 1)
	}
	r.ReplSeeds = *seeds
	start := time.Now()
	serialDigests := vorxbench.ReplicateSeeds(ss, 1, vorxbench.SeededRun)
	serialWall = time.Since(start)
	parDigests, parWall := serialDigests, serialWall
	if r.SuiteWorkers > 1 {
		start = time.Now()
		parDigests = vorxbench.ReplicateSeeds(ss, r.SuiteWorkers, vorxbench.SeededRun)
		parWall = time.Since(start)
	}
	r.ReplSerialMs = float64(serialWall.Microseconds()) / 1000
	r.ReplParallelMs = float64(parWall.Microseconds()) / 1000
	r.ReplSpeedup = serialWall.Seconds() / parWall.Seconds()
	r.ReplByteIdentical = true
	for i := range serialDigests {
		if serialDigests[i] != parDigests[i] {
			r.ReplByteIdentical = false
		}
	}
	fmt.Printf("replication: %d seeds  serial %v, %d workers %v  (%.2fx, per-seed identical: %v)\n",
		*seeds, serialWall.Round(time.Millisecond), r.SuiteWorkers, parWall.Round(time.Millisecond),
		r.ReplSpeedup, r.ReplByteIdentical)

	// 6. Sharded kernel: the same simulation on the serial kernel and
	// split over each shard count in the sweep. The digests must match
	// byte for byte at every count — that is the parallel kernel's
	// contract, not a statistical property. Wall clocks take the best
	// of shardReps runs: virtual time is exact, but host scheduling on
	// a shared builder is noisy and the minimum is the stable estimate.
	const shardReps = 5
	r.ShardGOMAXPROCS = runtime.GOMAXPROCS(0)
	r.ShardNumCPU = runtime.NumCPU()
	counts := []int{2, 4, 8}
	if *shards != 2 && *shards != 4 && *shards != 8 {
		counts = append(counts, *shards)
	}
	best := func(n int) vorxbench.ShardMeasure {
		run := vorxbench.ShardBench(n)
		for rep := 1; rep < shardReps; rep++ {
			if again := vorxbench.ShardBench(n); again.Wall < run.Wall {
				run = again
			}
		}
		return run
	}
	serial := best(1)
	r.ShardSerialMs = float64(serial.Wall.Microseconds()) / 1000
	r.ShardEvents = serial.Events
	r.ShardByteIdentical = true
	for _, n := range counts {
		run := best(n)
		row := shardRow{
			Shards:           n,
			Events:           run.Events,
			CrossPosts:       run.Cross,
			Handoffs:         run.Handoffs,
			WallMs:           float64(run.Wall.Microseconds()) / 1000,
			Speedup:          serial.Wall.Seconds() / run.Wall.Seconds(),
			HorizonPublishes: run.Sync.HorizonPublishes,
			NullMessages:     run.Sync.NullMessages,
			Wakeups:          run.Sync.Wakeups,
			DrainRuns:        run.Sync.DrainRuns,
			AvgDrainRun:      run.Sync.AvgDrainRun(),
			ByteIdentical:    run.Digest == serial.Digest,
		}
		r.ShardRows = append(r.ShardRows, row)
		if !row.ByteIdentical {
			r.ShardByteIdentical = false
		}
		if n == *shards {
			r.ShardShards = n
			r.ShardCrossPosts = row.CrossPosts
			r.ShardHandoffs = row.Handoffs
			r.ShardParallelMs = row.WallMs
			r.ShardSpeedup = row.Speedup
		}
		fmt.Printf("sharded:     %d shards %v  (%.2fx vs serial %v, %d cross posts, %d horizon pubs, %d null msgs, %d wakeups, %.1f ev/drain, byte-identical: %v)\n",
			n, run.Wall.Round(time.Millisecond), row.Speedup, serial.Wall.Round(time.Millisecond),
			row.CrossPosts, row.HorizonPublishes, row.NullMessages, row.Wakeups, row.AvgDrainRun, row.ByteIdentical)
	}
	if r.ShardGOMAXPROCS < r.ShardShards {
		fmt.Printf("sharded:     note: %d of %d CPUs usable for %d shards — synchronization overhead with little parallelism\n",
			r.ShardGOMAXPROCS, r.ShardNumCPU, r.ShardShards)
	}

	if !r.SuiteByteIdentical || !r.ReplByteIdentical {
		fmt.Fprintln(os.Stderr, "vorx bench: parallel replication diverged from serial output")
		defer os.Exit(1)
	}
	if !r.ShardByteIdentical {
		fmt.Fprintln(os.Stderr, "vorx bench: sharded run diverged from the serial kernel")
		defer os.Exit(1)
	}

	if *jsonOut || *out != "" {
		path := *out
		if path == "" {
			path = fmt.Sprintf("BENCH_%s.json", *rev)
		}
		b, err := json.MarshalIndent(&r, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "vorx bench:", err)
			os.Exit(1)
		}
		b = append(b, '\n')
		if err := os.WriteFile(path, b, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "vorx bench:", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", path)
	}
}

// benchKernel drives one self-rescheduling timer through n events and
// reports wall time and bytes allocated during the run.
func benchKernel(n int) (time.Duration, float64) {
	k := sim.NewKernel(1)
	fired := 0
	var tick func()
	tick = func() {
		fired++
		if fired < n {
			k.After(sim.Microsecond, tick)
		}
	}
	k.After(sim.Microsecond, tick)
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	start := time.Now()
	if err := k.Run(); err != nil {
		panic(err)
	}
	wall := time.Since(start)
	runtime.ReadMemStats(&m1)
	return wall, float64(m1.TotalAlloc - m0.TotalAlloc)
}

// benchStream runs the large-write stream workload under a comm
// profile, returning total host wall time, total host events
// scheduled, and the virtual makespan of one run.
func benchStream(runs, size, msgs int, cp core.CommProfile) (time.Duration, uint64, sim.Duration) {
	var wall time.Duration
	var events uint64
	var virt sim.Duration
	for i := 0; i < runs; i++ {
		sys, err := core.Build(core.Config{Nodes: 2, Seed: 1, Comm: cp})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		virt = workload.Stream(sys, size, msgs)
		wall += time.Since(start)
		events += sys.K.Scheduled()
	}
	return wall, events, virt
}

// benchMessages runs the all-to-one workload `runs` times on fresh
// systems, measuring only the workload portion of each run.
func benchMessages(runs, nodes, size, per int) (time.Duration, float64) {
	var wall time.Duration
	var bytes float64
	for i := 0; i < runs; i++ {
		sys, err := core.Build(core.Config{Nodes: nodes, Seed: 1})
		if err != nil {
			panic(err)
		}
		var m0, m1 runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&m0)
		start := time.Now()
		workload.ManyToOne(sys, size, per)
		wall += time.Since(start)
		runtime.ReadMemStats(&m1)
		bytes += float64(m1.TotalAlloc - m0.TotalAlloc)
	}
	return wall, bytes
}
