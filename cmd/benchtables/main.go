// Command benchtables regenerates every table and figure of the
// paper's evaluation from the simulation and prints them with the
// paper's published numbers alongside.
//
// Usage:
//
//	benchtables              # all experiments, serially
//	benchtables -t T1,E2     # selected experiments
//	benchtables -workers 0   # replicate across one worker per CPU
//	benchtables -list        # list experiment ids
//
// Each experiment builds its own share-nothing simulation, so -workers
// only changes wall-clock time: the printed output is byte-identical
// to the serial run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hpcvorx/internal/vorxbench"
)

func main() {
	sel := flag.String("t", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 1, "replication workers; 0 = one per CPU (output is identical to -workers 1)")
	flag.Parse()

	if *list {
		for _, id := range vorxbench.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := vorxbench.IDs()
	if *sel != "" {
		ids = strings.Split(*sel, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	for i, tb := range vorxbench.RunIDs(ids, *workers) {
		if tb == nil {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (try -list)\n", ids[i])
			os.Exit(1)
		}
		tb.Format(os.Stdout)
	}
}
