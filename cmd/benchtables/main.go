// Command benchtables regenerates every table and figure of the
// paper's evaluation from the simulation and prints them with the
// paper's published numbers alongside.
//
// Usage:
//
//	benchtables              # all experiments, serially
//	benchtables -t T1,E2     # selected experiments
//	benchtables -workers 0   # replicate across one worker per CPU
//	benchtables -list        # list experiment ids
//
// Each experiment builds its own share-nothing simulation, so -workers
// only changes wall-clock time: the printed output is byte-identical
// to the serial run.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"hpcvorx/internal/vorxbench"
)

func main() {
	sel := flag.String("t", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	workers := flag.Int("workers", 1, "replication workers; 0 = one per CPU (output is identical to -workers 1)")
	bench := flag.String("bench", "", "render classic-vs-pipelined delta columns from a BENCH_<rev>.json file")
	flag.Parse()

	if *list {
		for _, id := range vorxbench.IDs() {
			fmt.Println(id)
		}
		return
	}
	if *bench != "" {
		renderCommDeltas(*bench)
		return
	}
	ids := vorxbench.IDs()
	if *sel != "" {
		ids = strings.Split(*sel, ",")
		for i := range ids {
			ids[i] = strings.TrimSpace(ids[i])
		}
	}
	for i, tb := range vorxbench.RunIDs(ids, *workers) {
		if tb == nil {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (try -list)\n", ids[i])
			os.Exit(1)
		}
		tb.Format(os.Stdout)
	}
}

// renderCommDeltas prints the classic-vs-pipelined comparison recorded
// by `vorx bench -json` as a delta table: host cost per message, host
// events per message, and the virtual-time speedup of the fast path.
func renderCommDeltas(path string) {
	var r struct {
		Rev                       string  `json:"rev"`
		CommStreamMsgs            int     `json:"comm_stream_msgs"`
		CommClassicNsPerMsg       float64 `json:"comm_classic_ns_per_msg"`
		CommPipelinedNsPerMsg     float64 `json:"comm_pipelined_ns_per_msg"`
		CommClassicEventsPerMsg   float64 `json:"comm_classic_events_per_msg"`
		CommPipelinedEventsPerMsg float64 `json:"comm_pipelined_events_per_msg"`
		CommVirtualSpeedup        float64 `json:"comm_virtual_speedup"`
	}
	b, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	if err := json.Unmarshal(b, &r); err != nil {
		fmt.Fprintln(os.Stderr, "benchtables:", err)
		os.Exit(1)
	}
	if r.CommStreamMsgs == 0 {
		fmt.Fprintf(os.Stderr, "benchtables: %s has no comm profile section (pre-pipelined revision?)\n", path)
		os.Exit(1)
	}
	delta := func(classic, pipelined float64) string {
		if classic == 0 {
			return "n/a"
		}
		return fmt.Sprintf("%+.1f%%", (pipelined-classic)/classic*100)
	}
	fmt.Printf("== comm profile deltas: %s (%d stream messages) ==\n", r.Rev, r.CommStreamMsgs)
	fmt.Printf("%-22s %14s %14s %10s\n", "metric", "classic", "pipelined", "delta")
	fmt.Printf("%-22s %14.0f %14.0f %10s\n", "host ns/msg",
		r.CommClassicNsPerMsg, r.CommPipelinedNsPerMsg,
		delta(r.CommClassicNsPerMsg, r.CommPipelinedNsPerMsg))
	fmt.Printf("%-22s %14.1f %14.1f %10s\n", "host events/msg",
		r.CommClassicEventsPerMsg, r.CommPipelinedEventsPerMsg,
		delta(r.CommClassicEventsPerMsg, r.CommPipelinedEventsPerMsg))
	fmt.Printf("%-22s %14s %14s %10s\n", "virtual throughput",
		"1.00x", fmt.Sprintf("%.2fx", r.CommVirtualSpeedup),
		delta(1, r.CommVirtualSpeedup))
}
