// Command benchtables regenerates every table and figure of the
// paper's evaluation from the simulation and prints them with the
// paper's published numbers alongside.
//
// Usage:
//
//	benchtables            # all experiments
//	benchtables -t T1,E2   # selected experiments
//	benchtables -list      # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"hpcvorx/internal/vorxbench"
)

func main() {
	sel := flag.String("t", "", "comma-separated experiment ids (default: all)")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *list {
		for _, id := range vorxbench.IDs() {
			fmt.Println(id)
		}
		return
	}
	ids := vorxbench.IDs()
	if *sel != "" {
		ids = strings.Split(*sel, ",")
	}
	for _, id := range ids {
		tb := vorxbench.ByID(strings.TrimSpace(id))
		if tb == nil {
			fmt.Fprintf(os.Stderr, "benchtables: unknown experiment %q (try -list)\n", id)
			os.Exit(1)
		}
		tb.Format(os.Stdout)
	}
}
