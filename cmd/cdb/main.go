// Command cdb demonstrates the VORX communications debugger on the
// §6.1 scenario: an application that deadlocks with every process
// waiting for input from another process. It builds the app, lets it
// wedge, and prints the channel-state report with the waits-for cycle.
//
// Usage:
//
//	cdb [-procs N] [-filter substring] [-blocked]
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcvorx/internal/cdb"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
)

func main() {
	procs := flag.Int("procs", 4, "processes in the deadlocked ring")
	filter := flag.String("filter", "", "only show channels whose name contains this")
	blockedOnly := flag.Bool("blocked", false, "only show blocked channel ends")
	asJSON := flag.Bool("json", false, "emit machine-readable JSON")
	flag.Parse()

	if *procs < 2 {
		fmt.Fprintln(os.Stderr, "cdb: need at least 2 processes")
		os.Exit(1)
	}
	sys, err := core.Build(core.Config{Nodes: *procs, Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "cdb:", err)
		os.Exit(1)
	}
	// A ring where everyone reads before writing: the classic bug.
	n := *procs
	for i := 0; i < n; i++ {
		i := i
		m := sys.Node(i)
		sys.Spawn(m, fmt.Sprintf("ring%d", i), 0, func(sp *kern.Subprocess) {
			// Channel ring.<i> connects process i (reader) with
			// process (i+1)%n (writer). Everyone opens both of its
			// channels, then reads first — nobody ever writes.
			var inCh, outCh = fmt.Sprintf("ring.%d", i), fmt.Sprintf("ring.%d", (i+n-1)%n)
			if inCh < outCh {
				in := m.Chans.Open(sp, inCh, objmgr.OpenAny)
				out := m.Chans.Open(sp, outCh, objmgr.OpenAny)
				in.Read(sp)
				out.Write(sp, 8, nil)
			} else {
				out := m.Chans.Open(sp, outCh, objmgr.OpenAny)
				in := m.Chans.Open(sp, inCh, objmgr.OpenAny)
				in.Read(sp)
				out.Write(sp, 8, nil)
			}
		})
	}
	runErr := sys.Run()
	fmt.Printf("application stopped: %v\n\n", runErr)

	snap := cdb.Capture(sys)
	var filters []cdb.Filter
	if *filter != "" {
		filters = append(filters, cdb.ByName(*filter))
	}
	if *blockedOnly {
		filters = append(filters, cdb.BlockedOnly())
	}
	sel := snap.Select(filters...)
	if *asJSON {
		data, err := sel.JSON()
		if err != nil {
			fmt.Fprintln(os.Stderr, "cdb:", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
	} else {
		sel.Format(os.Stdout)
	}
	sys.Shutdown()
}
