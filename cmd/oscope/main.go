// Command oscope demonstrates the VORX software oscilloscope (§6.2)
// on a deliberately imbalanced pipeline application, rendering the
// synchronized per-processor utilization graphs.
//
// Usage:
//
//	oscope [-nodes N] [-width W] [-from µs] [-to µs]
//	oscope -record trace.txt          # save the run's execution data
//	oscope -load trace.txt            # display a previously saved run
package main

import (
	"flag"
	"fmt"
	"os"

	"hpcvorx/internal/channels"
	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
	"hpcvorx/internal/oscope"
	"hpcvorx/internal/sim"
)

func main() {
	nodes := flag.Int("nodes", 4, "pipeline stages")
	width := flag.Int("width", 72, "columns in the rendered graphs")
	fromUS := flag.Float64("from", 0, "window start (µs; 0 = run start)")
	toUS := flag.Float64("to", 0, "window end (µs; 0 = run end)")
	record := flag.String("record", "", "save execution data to this file after the run")
	load := flag.String("load", "", "display a previously recorded trace instead of running")
	group := flag.Int("group", 0, "fold this many processors per row (0 = one row each)")
	flag.Parse()

	if *load != "" {
		f, err := os.Open(*load)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oscope:", err)
			os.Exit(1)
		}
		defer f.Close()
		sc, err := oscope.Load(f)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oscope:", err)
			os.Exit(1)
		}
		// "later the software oscilloscope is used to display the
		// data" — §6.2's record-then-display workflow.
		sc.RenderAll(os.Stdout, *width)
		return
	}

	sys, err := core.Build(core.Config{Nodes: *nodes, Seed: 1})
	if err != nil {
		fmt.Fprintln(os.Stderr, "oscope:", err)
		os.Exit(1)
	}
	sc := oscope.Attach(sys)

	// A pipeline where stage i computes i+1 units per message: later
	// stages are busier, earlier ones wait for output to drain —
	// exactly the load-balance problem §6.2 says profilers miss.
	n := *nodes
	const msgs = 12
	for i := 0; i < n; i++ {
		i := i
		m := sys.Node(i)
		sys.Spawn(m, fmt.Sprintf("stage%d", i), 0, func(sp *kern.Subprocess) {
			var in, out *channels.Channel
			if i > 0 {
				in = m.Chans.Open(sp, fmt.Sprintf("pipe.%d", i-1), objmgr.OpenAny)
			}
			if i < n-1 {
				out = m.Chans.Open(sp, fmt.Sprintf("pipe.%d", i), objmgr.OpenAny)
			}
			for k := 0; k < msgs; k++ {
				if in != nil {
					if _, ok := in.Read(sp); !ok {
						return
					}
				}
				sp.Compute(sim.Milliseconds(float64(i + 1)))
				if out != nil {
					if err := out.Write(sp, 512, nil); err != nil {
						return
					}
				}
			}
		})
	}
	if err := sys.Run(); err != nil {
		fmt.Fprintln(os.Stderr, "oscope: run:", err)
	}
	sc.Finalize()

	from := sim.Time(sim.Microseconds(*fromUS))
	to := sim.Time(sim.Microseconds(*toUS))
	if to == 0 {
		to = sys.K.Now()
	}
	if *group > 1 {
		sc.RenderGrouped(os.Stdout, from, to, *width, *group)
	} else {
		sc.Render(os.Stdout, from, to, *width)
	}
	fmt.Printf("\nload imbalance (max-min busy fraction): %.0f%%\n", 100*sc.Imbalance(from, to))

	if *record != "" {
		f, err := os.Create(*record)
		if err != nil {
			fmt.Fprintln(os.Stderr, "oscope:", err)
			os.Exit(1)
		}
		if err := sc.Save(f); err != nil {
			fmt.Fprintln(os.Stderr, "oscope:", err)
			os.Exit(1)
		}
		f.Close()
		fmt.Printf("execution data saved to %s (replay with -load)\n", *record)
	}
}
