// Package hpcvorx is a deterministic simulation-based reproduction of
// "The Evolution of HPC/VORX" (Katseff, Gaglianello, Robinson, PPoPP
// 1990): a local area multicomputer consisting of a pool of simulated
// 68020 processing nodes and host workstations joined by the HPC — a
// modular, hardware-flow-controlled interconnect of twelve-port
// self-routing clusters — and run by the VORX distributed operating
// system.
//
// The library lives under internal/: the simulation kernel (sim), the
// calibrated cost model (m68k), the interconnect (hpc, topo), the
// S/NET baseline (snet, flowctl), the node kernel (kern), the
// communications stack (netif, channels, objmgr, udo, multicast), the
// execution environment (stub, resmgr), the tools (cdb, oscope,
// profiler), the workloads (fft, spice, bitmap, workload), the
// experiment harness (vorxbench), and the system assembly (core).
//
// See README.md for a tour, DESIGN.md for the architecture and
// calibration notes, and EXPERIMENTS.md for the paper-vs-measured
// record. The benchmarks in bench_test.go regenerate every table and
// figure of the paper's evaluation.
package hpcvorx
