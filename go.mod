module hpcvorx

go 1.22
