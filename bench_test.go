// Benchmarks regenerating the paper's evaluation. Each benchmark runs
// the corresponding experiment's workload once per iteration on a
// fresh simulated machine and reports the simulated-time metric the
// paper published (sim-µs/msg, sim-seconds, sim-MB/s, ...) alongside
// Go's wall-clock ns/op. The full sweeps — every row of every table —
// are produced by cmd/benchtables and recorded in EXPERIMENTS.md.
package hpcvorx_test

import (
	"fmt"
	"math/rand"
	"testing"

	"hpcvorx/internal/bitmap"
	"hpcvorx/internal/cemu"
	"hpcvorx/internal/core"
	"hpcvorx/internal/dfs"
	"hpcvorx/internal/fft"
	"hpcvorx/internal/flowctl"
	"hpcvorx/internal/hpc"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/linda"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/rapport"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
	"hpcvorx/internal/spice"
	"hpcvorx/internal/stub"
	"hpcvorx/internal/topo"
	"hpcvorx/internal/udo"
	"hpcvorx/internal/vorxbench"
	"hpcvorx/internal/workload"
)

// BenchmarkTable1SlidingWindow regenerates Table 1 anchor points:
// reader-active sliding-window latency by buffer count and size.
func BenchmarkTable1SlidingWindow(b *testing.B) {
	for _, k := range []int{1, 8, 64} {
		for _, size := range []int{4, 1024} {
			b.Run(fmt.Sprintf("buffers=%d/size=%d", k, size), func(b *testing.B) {
				var us float64
				for i := 0; i < b.N; i++ {
					us = vorxbench.WindowLatency(size, k, 1000)
				}
				b.ReportMetric(us, "sim-µs/msg")
				b.ReportMetric(vorxbench.Table1Paper[k][size], "paper-µs/msg")
			})
		}
	}
}

// BenchmarkTable2Channels regenerates Table 2: channel stop-and-wait
// latency by message size.
func BenchmarkTable2Channels(b *testing.B) {
	for _, size := range []int{4, 64, 256, 1024} {
		b.Run(fmt.Sprintf("size=%d", size), func(b *testing.B) {
			var us float64
			for i := 0; i < b.N; i++ {
				us = vorxbench.ChannelLatency(size, 1000)
			}
			b.ReportMetric(us, "sim-µs/msg")
			b.ReportMetric(vorxbench.Table2Paper[size], "paper-µs/msg")
		})
	}
}

// BenchmarkChannelThroughput regenerates E1: 1027 kbyte/s at 1024 B.
func BenchmarkChannelThroughput(b *testing.B) {
	var rate float64
	for i := 0; i < b.N; i++ {
		rate = 1024.0 / vorxbench.ChannelLatency(1024, 1000) * 1000
	}
	b.ReportMetric(rate, "sim-kB/s")
	b.ReportMetric(1027, "paper-kB/s")
}

// BenchmarkDownload regenerates E2: 12 s per-process vs 2 s tree for
// 70 processes.
func BenchmarkDownload(b *testing.B) {
	for _, mode := range []stub.Mode{stub.PerProcess, stub.SharedTree} {
		b.Run(mode.String(), func(b *testing.B) {
			var secs float64
			for i := 0; i < b.N; i++ {
				sys, err := core.Build(core.Config{Hosts: 1, Nodes: 70, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				app := stub.Launch(sys, sys.Host(0), sys.Nodes(), stub.DefaultImage(), mode, nil)
				sys.RunFor(sim.Seconds(120))
				if !app.Ready() {
					b.Fatal("download incomplete")
				}
				secs = app.StartedAt.Seconds()
				sys.Shutdown()
			}
			b.ReportMetric(secs, "sim-seconds")
		})
	}
}

// BenchmarkUDODirect regenerates E3: 60 µs software latency at 64 B.
func BenchmarkUDODirect(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		tb := vorxbench.E3UDOLatency()
		for _, row := range tb.Rows {
			if row[0] == "64B" {
				fmt.Sscanf(row[1], "%f", &us)
			}
		}
	}
	b.ReportMetric(us, "sim-µs")
	b.ReportMetric(60, "paper-µs")
}

// BenchmarkBitmap regenerates E4: 3.2 Mbyte/s bitmap streaming.
func BenchmarkBitmap(b *testing.B) {
	var mbps, fps float64
	for i := 0; i < b.N; i++ {
		sys, err := core.Build(core.Config{Hosts: 1, Nodes: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		res, err := bitmap.Stream(sys, sys.Node(0), sys.Host(0), bitmap.Width, bitmap.Height, 10)
		if err != nil {
			b.Fatal(err)
		}
		mbps, fps = res.MBytesPerSec, res.FPS
	}
	b.ReportMetric(mbps, "sim-MB/s")
	b.ReportMetric(fps, "sim-fps")
}

// BenchmarkFFT2DDistribution regenerates E5: multicast vs scatter
// redistribution in the distributed 2DFFT.
func BenchmarkFFT2DDistribution(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	in := fft.NewMatrix(64)
	for i := range in.Data {
		in.Data[i] = complex(rng.Float64(), rng.Float64())
	}
	for _, strat := range []fft.Strategy{fft.Multicast, fft.Scatter} {
		b.Run(strat.String(), func(b *testing.B) {
			var ms float64
			var reads int64
			for i := 0; i < b.N; i++ {
				sys, err := core.Build(core.Config{Nodes: 8, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, _, err := fft.Run2DFFT(sys, in, 8, strat)
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Milliseconds()
				reads = res.NumbersRead[0]
			}
			b.ReportMetric(ms, "sim-ms")
			b.ReportMetric(float64(reads), "numbers-read/proc")
		})
	}
}

// BenchmarkSNETFlowControl regenerates E6: the S/NET recovery schemes
// and the HPC under many-to-one load.
func BenchmarkSNETFlowControl(b *testing.B) {
	costs := m68k.DefaultCosts()
	run := func(b *testing.B, mk func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy) (int, float64) {
		k := sim.NewKernel(7)
		nw := snet.NewNetwork(k, costs, 7)
		strat := mk(k, nw)
		delivered := 0
		if res, ok := strat.(*flowctl.Reservation); ok {
			res.SetDeliver(0, func(m snet.Message) { delivered++ })
		} else {
			nw.Station(0).SetDeliver(func(m snet.Message) { delivered++ })
			nw.Station(0).StartKernel()
		}
		var last sim.Time
		for i := 1; i <= 6; i++ {
			i := i
			k.Spawn(fmt.Sprint("s", i), func(p *sim.Proc) {
				for j := 0; j < 10; j++ {
					strat.Send(p, nw.Station(i), 0, 1000, nil)
				}
				last = p.Now()
			})
		}
		k.RunFor(sim.Seconds(4))
		k.Shutdown()
		return delivered, last.Sub(0).Milliseconds()
	}
	b.Run("spin-retry", func(b *testing.B) {
		var d int
		for i := 0; i < b.N; i++ {
			d, _ = run(b, func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy { return &flowctl.SpinRetry{} })
		}
		b.ReportMetric(float64(d), "delivered-of-60")
	})
	b.Run("random-backoff", func(b *testing.B) {
		var d int
		var ms float64
		for i := 0; i < b.N; i++ {
			d, ms = run(b, func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy {
				return &flowctl.RandomBackoff{Max: sim.Milliseconds(3)}
			})
		}
		b.ReportMetric(float64(d), "delivered-of-60")
		b.ReportMetric(ms, "sim-ms")
	})
	b.Run("reservation", func(b *testing.B) {
		var d int
		var ms float64
		for i := 0; i < b.N; i++ {
			d, ms = run(b, func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy {
				return flowctl.NewReservation(k, nw)
			})
		}
		b.ReportMetric(float64(d), "delivered-of-60")
		b.ReportMetric(ms, "sim-ms")
	})
	b.Run("hpc-hardware", func(b *testing.B) {
		var ms float64
		for i := 0; i < b.N; i++ {
			sys, err := core.Build(core.Config{Nodes: 7, Seed: 1})
			if err != nil {
				b.Fatal(err)
			}
			ms = workload.ManyToOne(sys, 1000, 10).Milliseconds()
		}
		b.ReportMetric(60, "delivered-of-60")
		b.ReportMetric(ms, "sim-ms")
	})
}

// BenchmarkContextSwitch regenerates E7's 80 µs context switch.
func BenchmarkContextSwitch(b *testing.B) {
	costs := m68k.DefaultCosts()
	var perSwitch float64
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		n := kern.NewNode(k, costs, "n")
		const rounds = 200
		semA := n.NewSemaphore("a", 0)
		semB := n.NewSemaphore("b", 0)
		var start, end sim.Time
		n.SpawnSubprocess("ping", 0, func(sp *kern.Subprocess) {
			start = sp.Now()
			for j := 0; j < rounds; j++ {
				semA.V(sp)
				semB.P(sp)
			}
			end = sp.Now()
		})
		n.SpawnSubprocess("pong", 0, func(sp *kern.Subprocess) {
			for j := 0; j < rounds; j++ {
				semA.P(sp)
				semB.V(sp)
			}
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		perSwitch = end.Sub(start).Microseconds() / (2 * rounds)
	}
	b.ReportMetric(perSwitch, "sim-µs/handoff")
	b.ReportMetric(80, "paper-µs/switch")
}

// BenchmarkCoroutineSwitch regenerates E7's cheap coroutine switch.
func BenchmarkCoroutineSwitch(b *testing.B) {
	costs := m68k.DefaultCosts()
	var perSwitch float64
	for i := 0; i < b.N; i++ {
		k := sim.NewKernel(1)
		n := kern.NewNode(k, costs, "n")
		const rounds = 200
		var elapsed sim.Duration
		n.SpawnSubprocess("host", 0, func(sp *kern.Subprocess) {
			g := kern.NewCoroutineGroup(sp)
			for c := 0; c < 2; c++ {
				g.Add(fmt.Sprint(c), func(co *kern.Coroutine) {
					for j := 0; j < rounds; j++ {
						co.Yield()
					}
				})
			}
			s := sp.Now()
			g.Run()
			elapsed = sp.Now().Sub(s)
		})
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
		perSwitch = elapsed.Microseconds() / (2 * rounds)
	}
	b.ReportMetric(perSwitch, "sim-µs/switch")
}

// BenchmarkOpenStorm regenerates E8: the channel-open storm under
// centralized vs distributed object managers.
func BenchmarkOpenStorm(b *testing.B) {
	for _, central := range []bool{true, false} {
		name := "distributed"
		if central {
			name = "centralized"
		}
		b.Run(name, func(b *testing.B) {
			var ms float64
			var maxShare int
			for i := 0; i < b.N; i++ {
				sys, err := core.Build(core.Config{Hosts: 1, Nodes: 32, CentralizedManager: central, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res := workload.OpenStorm(sys, 6)
				ms = res.Elapsed.Milliseconds()
				maxShare = res.MaxPerManager
			}
			b.ReportMetric(ms, "sim-ms")
			b.ReportMetric(float64(maxShare), "max-opens-per-manager")
		})
	}
}

// BenchmarkSpiceSolve compares the SPICE workload over channels and
// user-defined objects (the E3 story at application level).
func BenchmarkSpiceSolve(b *testing.B) {
	for _, tr := range []spice.Transport{spice.Channels, spice.UDO} {
		b.Run(tr.String(), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				sys, err := core.Build(core.Config{Nodes: 4, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				g := spice.NewGrid(16)
				res, _, err := spice.Solve(sys, g, 4, 40, tr)
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Milliseconds()
			}
			b.ReportMetric(ms, "sim-ms")
		})
	}
}

// BenchmarkFigure1Routing exercises the 1024-node incomplete-hypercube
// construction of Figure 1 / §1: route computation across the fabric.
func BenchmarkFigure1Routing(b *testing.B) {
	tp, err := topo.IncompleteHypercube(256, 4)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	hops := 0
	for i := 0; i < b.N; i++ {
		src := topo.EndpointID(i % 1024)
		dst := topo.EndpointID((i * 37) % 1024)
		hops += len(tp.Route(src, dst))
	}
	b.ReportMetric(float64(hops)/float64(b.N), "route-len")
}

// BenchmarkSimKernel measures the raw discrete-event engine:
// events dispatched per wall-clock second.
func BenchmarkSimKernel(b *testing.B) {
	k := sim.NewKernel(1)
	count := 0
	var tick func()
	tick = func() {
		count++
		if count < b.N {
			k.After(sim.Microsecond, tick)
		}
	}
	k.After(sim.Microsecond, tick)
	b.ResetTimer()
	if err := k.Run(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkSimKernelCancel measures the schedule/cancel churn path —
// the arm-timer idiom every protocol timeout exercises.
func BenchmarkSimKernelCancel(b *testing.B) {
	k := sim.NewKernel(1)
	fn := func() {}
	b.ReportAllocs()
	b.ResetTimer()
	var tm sim.Timer
	for i := 0; i < b.N; i++ {
		tm.Stop()
		tm = k.After(sim.Millisecond, fn)
		if i%1024 == 1023 {
			k.RunFor(10 * sim.Microsecond)
		}
	}
}

// BenchmarkHPCSendPath measures one full fabric cycle — route, hop
// through a 4-link cross-cluster path, deliver, release — on the
// pooled message path. Steady state is allocation-free.
func BenchmarkHPCSendPath(b *testing.B) {
	k := sim.NewKernel(1)
	tp, err := topo.IncompleteHypercube(4, 4)
	if err != nil {
		b.Fatal(err)
	}
	ic := hpc.New(k, m68k.DefaultCosts(), tp)
	msg := &hpc.Message{Src: 0, Dst: topo.EndpointID(tp.Endpoints() - 1), Size: 512}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ok, err := ic.TrySend(msg, nil)
		if err != nil || !ok {
			b.Fatalf("TrySend: ok=%v err=%v", ok, err)
		}
		if err := k.Run(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkReplicateSeeds measures the parallel replication harness on
// a small seeded workload: one share-nothing simulation per seed,
// fanned across a worker pool. On a multi-core host the speedup over
// workers=1 approaches the worker count; the per-seed digests are
// byte-identical either way.
func BenchmarkReplicateSeeds(b *testing.B) {
	seeds := make([]int64, 8)
	for i := range seeds {
		seeds[i] = int64(i + 1)
	}
	for _, cfg := range []struct {
		name    string
		workers int
	}{{"serial", 1}, {"parallel", vorxbench.Workers(0)}} {
		b.Run(fmt.Sprintf("%s/workers=%d", cfg.name, cfg.workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				vorxbench.ReplicateSeeds(seeds, cfg.workers, vorxbench.SeededRun)
			}
		})
	}
}

// BenchmarkFFTMath measures the pure-Go FFT used by the workloads.
func BenchmarkFFTMath(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i%17), float64(i%5))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := fft.FFT(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSyscallPool measures the decentralized syscall scheme of
// §3.3's closing paragraph: 8 processes × 12 calls through 1 vs 4
// host workstations.
func BenchmarkSyscallPool(b *testing.B) {
	for _, hosts := range []int{1, 4} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				sys, err := core.Build(core.Config{Hosts: hosts, Nodes: 8, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				pool := stub.NewSyscallPool(sys, sys.Hosts())
				var end sim.Time
				for p := 0; p < 8; p++ {
					p := p
					m := sys.Node(p)
					sys.Spawn(m, fmt.Sprintf("app%d", p), 0, func(sp *kern.Subprocess) {
						c := pool.NewClient(m)
						for j := 0; j < 12; j++ {
							if err := c.Syscall(sp, "write", sim.Microseconds(300)); err != nil {
								b.Error(err)
								return
							}
						}
						if sp.Now() > end {
							end = sp.Now()
						}
					})
				}
				sys.RunFor(sim.Seconds(30))
				sys.Shutdown()
				ms = end.Sub(0).Milliseconds()
			}
			b.ReportMetric(ms, "sim-ms")
		})
	}
}

// BenchmarkLindaOps measures tuple-space operation latency: an
// out/in pair between two nodes.
func BenchmarkLindaOps(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		sys, err := core.Build(core.Config{Nodes: 3, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		space := linda.New(sys, sys.Nodes())
		const rounds = 100
		var start, end sim.Time
		sys.Spawn(sys.Node(0), "a", 0, func(sp *kern.Subprocess) {
			h := space.HandleOn(sys.Node(0))
			start = sp.Now()
			for j := 0; j < rounds; j++ {
				if err := h.Out(sp, "ping", j); err != nil {
					b.Error(err)
					return
				}
				if _, err := h.In(sp, "pong", linda.Any); err != nil {
					b.Error(err)
					return
				}
			}
			end = sp.Now()
		})
		sys.Spawn(sys.Node(1), "b", 0, func(sp *kern.Subprocess) {
			h := space.HandleOn(sys.Node(1))
			for j := 0; j < rounds; j++ {
				if _, err := h.In(sp, "ping", linda.Any); err != nil {
					b.Error(err)
					return
				}
				if err := h.Out(sp, "pong", j); err != nil {
					b.Error(err)
					return
				}
			}
		})
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		us = end.Sub(start).Microseconds() / (2 * rounds)
	}
	b.ReportMetric(us, "sim-µs/op-pair")
}

// BenchmarkAblationSideBuffers regenerates A1's anchor points.
func BenchmarkAblationSideBuffers(b *testing.B) {
	for _, id := range []string{"A1"} {
		tb := (*vorxbench.Table)(nil)
		b.Run(id, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				tb = vorxbench.ByID(id)
			}
			_ = tb
		})
	}
}

// BenchmarkGatherVsCoalesce measures the scatter/gather saving for a
// 3x300-byte send.
func BenchmarkGatherVsCoalesce(b *testing.B) {
	run := func(coalesce bool) sim.Duration {
		sys, err := core.Build(core.Config{Nodes: 2, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		snd := udo.New(sys.Node(0).IF, "bench-g", false)
		rcv := udo.New(sys.Node(1).IF, "bench-g", false)
		segs := []udo.GatherSegment{{Size: 300}, {Size: 300}, {Size: 300}}
		var cost sim.Duration
		sys.Spawn(sys.Node(0), "s", 0, func(sp *kern.Subprocess) {
			sp.Compute(sim.Microseconds(1))
			start := sp.Now()
			if coalesce {
				snd.SendCoalesced(sp, sys.Node(1).EP, segs)
			} else {
				snd.SendGather(sp, sys.Node(1).EP, segs)
			}
			cost = sp.Now().Sub(start)
		})
		sys.Spawn(sys.Node(1), "r", 0, func(sp *kern.Subprocess) { rcv.Recv(sp) })
		if err := sys.Run(); err != nil {
			b.Fatal(err)
		}
		return cost
	}
	b.Run("gather", func(b *testing.B) {
		var d sim.Duration
		for i := 0; i < b.N; i++ {
			d = run(false)
		}
		b.ReportMetric(d.Microseconds(), "sim-µs")
	})
	b.Run("coalesce", func(b *testing.B) {
		var d sim.Duration
		for i := 0; i < b.N; i++ {
			d = run(true)
		}
		b.ReportMetric(d.Microseconds(), "sim-µs")
	})
}

// BenchmarkCEMU measures the CEMU-style distributed timing simulation:
// step rate by processor count.
func BenchmarkCEMU(b *testing.B) {
	circuit := cemu.RandomCircuit(6, 64, 5)
	initial := make([]bool, circuit.Signals)
	for _, procs := range []int{1, 4} {
		b.Run(fmt.Sprintf("procs=%d", procs), func(b *testing.B) {
			var ms float64
			for i := 0; i < b.N; i++ {
				sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				res, err := cemu.Run(sys, circuit, initial, 10, procs, 4)
				if err != nil {
					b.Fatal(err)
				}
				ms = res.Elapsed.Milliseconds()
			}
			b.ReportMetric(ms, "sim-ms")
		})
	}
}

// BenchmarkDFS measures distributed-file-service operation cost.
func BenchmarkDFS(b *testing.B) {
	var us float64
	for i := 0; i < b.N; i++ {
		sys, err := core.Build(core.Config{Hosts: 3, Nodes: 1, Seed: 1})
		if err != nil {
			b.Fatal(err)
		}
		svc := dfs.New(sys, sys.Hosts(), 2)
		c := svc.NewClient(sys.Node(0))
		const ops = 30
		var start, end sim.Time
		sys.Spawn(sys.Node(0), "app", 0, func(sp *kern.Subprocess) {
			if err := c.Create(sp, "/bench"); err != nil {
				b.Error(err)
				return
			}
			start = sp.Now()
			for j := 0; j < ops; j++ {
				if err := c.Append(sp, "/bench", make([]byte, 256)); err != nil {
					b.Error(err)
					return
				}
			}
			end = sp.Now()
		})
		sys.RunFor(sim.Seconds(10))
		sys.Shutdown()
		us = end.Sub(start).Microseconds() / ops
	}
	b.ReportMetric(us, "sim-µs/replicated-append")
}

// BenchmarkRapport measures the conference mixer's added latency per
// frame at several memberships.
func BenchmarkRapport(b *testing.B) {
	for _, members := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("members=%d", members), func(b *testing.B) {
			var mixes int
			for i := 0; i < b.N; i++ {
				sys, err := core.Build(core.Config{Hosts: members, Nodes: 1, Seed: 1})
				if err != nil {
					b.Fatal(err)
				}
				conf := rapport.New(sys, sys.Node(0), "bench")
				for m := 0; m < members; m++ {
					m := m
					host := sys.Host(m)
					sys.Spawn(host, fmt.Sprintf("c%d", m), 0, func(sp *kern.Subprocess) {
						mem, err := conf.Join(sp, host)
						if err != nil {
							b.Error(err)
							return
						}
						for f := 0; f < 10; f++ {
							if err := mem.Speak(sp); err != nil {
								return
							}
							if _, err := mem.Listen(sp); err != nil {
								return
							}
						}
						mem.Leave(sp)
					})
				}
				sys.RunFor(sim.Seconds(5))
				sys.Shutdown()
				mixes = conf.Mixed
			}
			b.ReportMetric(float64(mixes), "mixes")
		})
	}
}
