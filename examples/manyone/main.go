// manyone: the flow-control story of paper §2, end to end. The same
// many-to-one burst — the "natural synchronization in which many
// processors send a message to a single processor at nearly the same
// time" — is thrown at the old S/NET under each software recovery
// scheme and then at the HPC with its hardware flow control.
package main

import (
	"fmt"
	"log"

	"hpcvorx/internal/core"
	"hpcvorx/internal/flowctl"
	"hpcvorx/internal/m68k"
	"hpcvorx/internal/sim"
	"hpcvorx/internal/snet"
	"hpcvorx/internal/workload"
)

const (
	senders = 6
	msgs    = 10
	size    = 1000
)

func runSNET(name string, mk func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy) {
	k := sim.NewKernel(7)
	nw := snet.NewNetwork(k, m68k.DefaultCosts(), senders+1)
	strat := mk(k, nw)
	delivered := 0
	if res, ok := strat.(*flowctl.Reservation); ok {
		res.SetDeliver(0, func(m snet.Message) { delivered++ })
	} else {
		nw.Station(0).SetDeliver(func(m snet.Message) { delivered++ })
		nw.Station(0).StartKernel()
	}
	var last sim.Time
	for i := 1; i <= senders; i++ {
		i := i
		k.Spawn(fmt.Sprintf("s%d", i), func(p *sim.Proc) {
			for j := 0; j < msgs; j++ {
				strat.Send(p, nw.Station(i), 0, size, nil)
			}
			last = p.Now()
		})
	}
	k.RunFor(sim.Seconds(5))
	k.Shutdown()
	status := fmt.Sprintf("finished in %7.1f ms", last.Sub(0).Milliseconds())
	if delivered < senders*msgs {
		status = "LIVELOCKED — receiver never frees room for a whole message"
	}
	fmt.Printf("S/NET %-16s delivered %2d/%2d   %s\n", name, delivered, senders*msgs, status)
}

func main() {
	fmt.Printf("%d senders x %d messages of %d bytes to one receiver\n\n", senders, msgs, size)
	runSNET("spin-retry", func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy {
		return &flowctl.SpinRetry{}
	})
	runSNET("random-backoff", func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy {
		return &flowctl.RandomBackoff{Max: sim.Milliseconds(3)}
	})
	runSNET("reservation", func(k *sim.Kernel, nw *snet.Network) flowctl.Strategy {
		return flowctl.NewReservation(k, nw)
	})

	sys, err := core.Build(core.Config{Nodes: senders + 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	mk := workload.ManyToOne(sys, size, msgs)
	fmt.Printf("HPC   %-16s delivered %2d/%2d   finished in %7.1f ms\n",
		"hardware", senders*msgs, senders*msgs, mk.Milliseconds())
	fmt.Println("\npaper §2: the HPC makes loss impossible in hardware, eliminating")
	fmt.Println("recovery software entirely; S/NET needed workarounds, each flawed.")
}
