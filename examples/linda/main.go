// linda: a bag-of-tasks computation on the distributed tuple space —
// the programming model whose implementors, the paper notes (§4.1),
// needed communications semantics that the channel protocol could not
// provide and built on raw access instead. A master drops prime-count
// tasks into the space; workers on other nodes withdraw, compute, and
// return results.
package main

import (
	"fmt"
	"log"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/linda"
	"hpcvorx/internal/sim"
)

const (
	workers = 6
	tasks   = 24
	span    = 2000 // each task counts primes in [n, n+span)
)

func primesIn(lo, hi int) int {
	count := 0
	for n := lo; n < hi; n++ {
		if n < 2 {
			continue
		}
		prime := true
		for d := 2; d*d <= n; d++ {
			if n%d == 0 {
				prime = false
				break
			}
		}
		if prime {
			count++
		}
	}
	return count
}

func main() {
	sys, err := core.Build(core.Config{Nodes: workers + 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	space := linda.New(sys, sys.Nodes())

	sys.Spawn(sys.Node(0), "master", 0, func(sp *kern.Subprocess) {
		h := space.HandleOn(sys.Node(0))
		for i := 0; i < tasks; i++ {
			if err := h.Out(sp, "task", i*span, (i+1)*span); err != nil {
				log.Fatal(err)
			}
		}
		total := 0
		for i := 0; i < tasks; i++ {
			tp, err := h.In(sp, "result", linda.Any, linda.Any)
			if err != nil {
				log.Fatal(err)
			}
			total += tp[2].(int)
		}
		for w := 0; w < workers; w++ {
			h.Out(sp, "task", -1, -1) // poison pills
		}
		fmt.Printf("primes below %d: %d (computed by %d workers at %v)\n",
			tasks*span, total, workers, sp.Now())
		if want := primesIn(0, tasks*span); total != want {
			log.Fatalf("wrong answer: %d, want %d", total, want)
		}
	})

	for w := 0; w < workers; w++ {
		w := w
		m := sys.Node(w + 1)
		sys.Spawn(m, fmt.Sprintf("worker%d", w), 0, func(sp *kern.Subprocess) {
			h := space.HandleOn(m)
			jobs := 0
			for {
				tp, err := h.In(sp, "task", linda.Any, linda.Any)
				if err != nil {
					log.Fatal(err)
				}
				lo, hi := tp[1].(int), tp[2].(int)
				if lo < 0 {
					fmt.Printf("  %s did %d tasks\n", m.Name(), jobs)
					return
				}
				// 68882-scale trial division cost.
				sp.Compute(sim.Duration(hi-lo) * sim.Microseconds(40))
				h.Out(sp, "result", lo, primesIn(lo, hi))
				jobs++
			}
		})
	}

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("tuple-space operations: %d out, %d in\n", space.Outs, space.Ins)
}
