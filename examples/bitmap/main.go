// bitmap: the §4.1 next-generation-workstation experiment. A
// processing node streams real-time display frames to a workstation,
// with all flow control done by the HPC hardware, and reports the
// delivered bandwidth and refresh rate.
package main

import (
	"fmt"
	"log"

	"hpcvorx/internal/bitmap"
	"hpcvorx/internal/core"
)

func main() {
	sys, err := core.Build(core.Config{Hosts: 1, Nodes: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	res, err := bitmap.Stream(sys, sys.Node(0), sys.Host(0), bitmap.Width, bitmap.Height, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("streamed %d frames of %dx%d monochrome (%d bytes each)\n",
		res.Frames, bitmap.Width, bitmap.Height, res.FrameBytes)
	fmt.Printf("delivered bandwidth: %.2f Mbyte/s (paper: 3.2)\n", res.MBytesPerSec)
	fmt.Printf("refresh rate:        %.1f Hz      (paper: 30)\n", res.FPS)
	fmt.Println("\nprotocol overhead is only the few statements needed to place the")
	fmt.Println("incoming data in the frame buffer; the HPC hardware does the rest.")
}
