// spice: the §4.1 parallel circuit-simulation workload. Solves a
// resistor-grid linear system by distributed Jacobi iteration on 4
// processing nodes, once over VORX channels and once over user-defined
// communications objects, and shows why the SPICE group bypassed the
// channel protocol.
package main

import (
	"fmt"
	"log"
	"math"

	"hpcvorx/internal/core"
	"hpcvorx/internal/spice"
)

func main() {
	const gridN, procs, iters = 32, 4, 60
	grid := spice.NewGrid(gridN)
	want := grid.SolveSequential(iters)

	var elapsed [2]float64
	for i, tr := range []spice.Transport{spice.Channels, spice.UDO} {
		sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, x, err := spice.Solve(sys, grid, procs, iters, tr)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for j := range x {
			if d := math.Abs(x[j] - want[j]); d > worst {
				worst = d
			}
		}
		if worst > 1e-9 {
			log.Fatalf("%v: diverges from sequential solve by %g", tr, worst)
		}
		elapsed[i] = res.Elapsed.Milliseconds()
		fmt.Printf("%-9s  %4d unknowns, %d sweeps on %d nodes: %7.1f ms, residual %.2e, %d messages\n",
			tr, grid.Unknowns(), iters, procs, elapsed[i], res.Residual, res.Messages)
	}
	fmt.Printf("\nuser-defined objects beat channels by %.2fx on this fine-grain exchange\n",
		elapsed[0]/elapsed[1])
	fmt.Println("(paper: SPICE obtained 60 µs software latencies with direct hardware access)")
}
