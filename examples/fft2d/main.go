// fft2d: the paper's §4.2 worked example. Computes a distributed
// two-dimensional FFT of a 64×64 image on 8 processing nodes twice —
// once redistributing with multicast, once with per-receiver messages
// — verifies both against the sequential transform, and reports the
// numbers each processor had to read.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"hpcvorx/internal/core"
	"hpcvorx/internal/fft"
)

func main() {
	const n, procs = 64, 8
	rng := rand.New(rand.NewSource(11))
	img := fft.NewMatrix(n)
	for i := range img.Data {
		img.Data[i] = complex(rng.Float64(), 0)
	}

	// Sequential reference.
	want := img.Clone()
	if err := fft.FFT2D(want); err != nil {
		log.Fatal(err)
	}

	for _, strat := range []fft.Strategy{fft.Multicast, fft.Scatter} {
		sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, got, err := fft.Run2DFFT(sys, img, procs, strat)
		if err != nil {
			log.Fatal(err)
		}
		if d := fft.MaxAbsDiff(got, want); d > 1e-9 {
			log.Fatalf("%v: result differs from reference by %g", strat, d)
		}
		fmt.Printf("%-10s  elapsed %8.1f ms   redistribution reads %6d numbers/processor   (verified)\n",
			strat, res.Elapsed.Milliseconds(), res.NumbersRead[0])
	}
	fmt.Println("\npaper §4.2: with multicast each processor reads the whole image")
	fmt.Println("(65536 numbers at n=256) but needs only its own columns (256);")
	fmt.Println("a different message for each receiver carries only what it needs.")
}
