// cemu: the MOS timing-simulation workload (Ackland et al., cited
// throughout the paper) — the application whose protocol experiments
// produced Table 1 and whose program structure motivated coroutines
// (§5). A gate-level circuit is partitioned over processing nodes;
// every unit-delay step the nodes evaluate their gates on coroutines
// and exchange boundary signals over sliding-window user-defined
// objects. The distributed result is verified against a sequential
// reference simulation.
package main

import (
	"fmt"
	"log"

	"hpcvorx/internal/cemu"
	"hpcvorx/internal/core"
)

func main() {
	const bits = 8
	circuit, pins := cemu.RippleAdder(bits)
	fmt.Printf("circuit: %d-bit ripple adder, %d gates, %d signals\n",
		bits, len(circuit.Gates), circuit.Signals)

	a, b := 173, 89
	initial := make([]bool, circuit.Signals)
	for i := 0; i < bits; i++ {
		initial[pins.A[i]] = a&(1<<i) != 0
		initial[pins.B[i]] = b&(1<<i) != 0
	}
	steps := 3*bits + 2 // let the carry chain settle

	for _, procs := range []int{1, 2, 4, 8} {
		sys, err := core.Build(core.Config{Nodes: procs, Seed: 1})
		if err != nil {
			log.Fatal(err)
		}
		res, err := cemu.Run(sys, circuit, initial, steps, procs, 4)
		if err != nil {
			log.Fatal(err)
		}
		sum := 0
		for i := 0; i < bits; i++ {
			if res.Final[pins.Sum[i]] {
				sum |= 1 << i
			}
		}
		if res.Final[pins.Cout] {
			sum |= 1 << bits
		}
		status := "WRONG"
		if sum == a+b {
			status = "verified"
		}
		fmt.Printf("procs=%d window=%d: %3d+%3d=%3d (%s), %d steps in %8.2f ms, %d boundary msgs\n",
			procs, res.Window, a, b, sum, status, res.Steps, res.Elapsed.Milliseconds(), res.PairMessages)
	}
	fmt.Println("\nthe CEMU pattern: coroutine-structured gate evaluation inside each")
	fmt.Println("node, sliding-window user-defined objects between them (paper §4.1, §5).")
}
