// fileserver: the decentralized system services of §3.2 — "Program
// downloading, file access, and other system services are also spread
// among the host workstations" — as a distributed file service.
// Files hash to host servers, replicate by multiple writes (§4.2's
// few-receiver pattern), and survive a host going down.
package main

import (
	"fmt"
	"log"

	"hpcvorx/internal/core"
	"hpcvorx/internal/dfs"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
)

func main() {
	sys, err := core.Build(core.Config{Hosts: 4, Nodes: 4, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	svc := dfs.New(sys, sys.Hosts(), 2)

	// Four node processes log results concurrently.
	for p := 0; p < 4; p++ {
		p := p
		m := sys.Node(p)
		sys.Spawn(m, fmt.Sprintf("worker%d", p), 0, func(sp *kern.Subprocess) {
			c := svc.NewClient(m)
			name := fmt.Sprintf("/results/worker%d", p)
			if err := c.Create(sp, name); err != nil {
				log.Fatal(err)
			}
			for i := 0; i < 5; i++ {
				line := fmt.Sprintf("sample %d from node%d\n", i, p)
				if err := c.Append(sp, name, []byte(line)); err != nil {
					log.Fatal(err)
				}
				sp.SleepFor(sim.Milliseconds(3))
			}
		})
	}
	// A reader on another node collects everything, then survives a
	// host failure.
	sys.Spawn(sys.Node(3), "collector", 0, func(sp *kern.Subprocess) {
		c := svc.NewClient(sys.Node(3))
		sp.SleepFor(sim.Milliseconds(60))
		total := 0
		for p := 0; p < 4; p++ {
			data, err := c.Read(sp, fmt.Sprintf("/results/worker%d", p))
			if err != nil {
				log.Fatal(err)
			}
			total += len(data)
		}
		fmt.Printf("collected %d bytes from 4 result files at t=%.1f ms\n",
			total, sp.Now().Microseconds()/1000)

		victim := svc.ReplicaHosts("/results/worker0")[0]
		svc.SetDown(victim, true)
		fmt.Printf("host%d (primary for worker0's file) goes down...\n", victim)
		data, err := c.Read(sp, "/results/worker0")
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("failover read from the replica still returns %d bytes\n", len(data))
	})

	sys.RunFor(sim.Seconds(10))
	sys.Shutdown()
	fmt.Printf("\noperations served per host: %v\n", svc.Ops)
	fmt.Println("files spread over all workstations — no single-host bottleneck (§3.2)")
}
