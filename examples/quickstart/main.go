// Quickstart: build a 12-endpoint HPC/VORX system, open a named
// channel between two processing nodes, and exchange messages — the
// minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"log"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/objmgr"
)

func main() {
	// One cluster: 2 host workstations + 10 processing nodes.
	sys, err := core.Build(core.Config{Hosts: 2, Nodes: 10, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("built:", sys.Topo)

	// A producer on node 0 and a consumer on node 1 rendezvous on the
	// channel name "greetings" — no addresses, no topology knowledge.
	sys.Spawn(sys.Node(0), "producer", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(0).Chans.Open(sp, "greetings", objmgr.OpenAny)
		for i := 1; i <= 3; i++ {
			msg := fmt.Sprintf("hello #%d from %s", i, sys.Node(0).Name())
			if err := ch.Write(sp, len(msg), msg); err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%8.1f µs] producer wrote %q\n", sp.Now().Microseconds(), msg)
		}
		ch.Close(sp)
	})
	sys.Spawn(sys.Node(1), "consumer", 0, func(sp *kern.Subprocess) {
		ch := sys.Node(1).Chans.Open(sp, "greetings", objmgr.OpenAny)
		for {
			m, ok := ch.Read(sp)
			if !ok {
				fmt.Printf("[%8.1f µs] consumer: channel closed\n", sp.Now().Microseconds())
				return
			}
			fmt.Printf("[%8.1f µs] consumer read %q (%d bytes)\n",
				sp.Now().Microseconds(), m.Payload, m.Size)
		}
	})

	if err := sys.Run(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulation complete at %v; interconnect delivered %d messages\n",
		sys.K.Now(), sys.IC.Stats().MessagesDelivered)
}
