// robot: the real-time motivation for subprocesses (paper §5):
// "Subprocesses were originally included for real-time applications
// that controlled hardware devices, such as robot arms and cameras
// connected to the processing nodes. Because distinct execution
// priorities can be specified for each subprocess and the scheduler
// is preemptive, the programmer had enough control ... to effectively
// implement real-time applications."
//
// A servo-control subprocess must respond to each 10 ms timer
// interrupt within a 2 ms deadline while a background circuit
// simulation grinds on the same node. With priorities the deadlines
// hold; without them the control loop misses constantly.
package main

import (
	"fmt"
	"log"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/sim"
)

const (
	period   = 10 * sim.Millisecond
	deadline = 2 * sim.Millisecond
	ticks    = 50
)

// run executes the scenario with the servo at the given priority and
// returns (met, missed) deadlines and the worst response time.
func run(servoPrio int) (met, missed int, worst sim.Duration) {
	sys, err := core.Build(core.Config{Nodes: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	node := sys.Node(0).Kern

	// Background load: a compute-bound circuit simulation.
	bg := sys.Spawn(sys.Node(0), "cemu", 0, func(sp *kern.Subprocess) {
		for {
			sp.Compute(5 * sim.Millisecond)
		}
	})
	bg.Proc().SetDaemon(true)

	// The servo subprocess: woken by the encoder interrupt every
	// period, must issue its actuator command within the deadline.
	var wakeServo func()
	var tickAt sim.Time
	sys.Spawn(sys.Node(0), "servo", servoPrio, func(sp *kern.Subprocess) {
		for i := 0; i < ticks; i++ {
			wakeServo = sp.Block(kern.WaitInput, "encoder")
			sp.BlockNow()
			// Control-law computation + actuator command.
			sp.Compute(400 * sim.Microsecond)
			resp := sp.Now().Sub(tickAt)
			if resp > worst {
				worst = resp
			}
			if resp <= deadline {
				met++
			} else {
				missed++
			}
		}
	})

	// The encoder: a hardware timer interrupt every period.
	var tick func()
	n := 0
	tick = func() {
		node.Interrupt(50*sim.Microsecond, func() {
			tickAt = sys.K.Now()
			if wakeServo != nil {
				wakeServo()
			}
			n++
			if n < ticks {
				sys.K.After(period, tick)
			}
		})
	}
	sys.K.After(period, tick)

	// The background load never exits, so run for the experiment's
	// span rather than to quiescence.
	sys.RunFor(sim.Duration(ticks+2) * period)
	sys.Shutdown()
	return met, missed, worst
}

func main() {
	fmt.Printf("servo control: %v period, %v response deadline, heavy background compute\n\n",
		period, deadline)
	for _, cfg := range []struct {
		label string
		prio  int
	}{
		{"equal priority (no preemption over background)", 0},
		{"high priority (preemptive, as VORX provides)", 5},
	} {
		met, missed, worst := run(cfg.prio)
		fmt.Printf("%-48s met %2d/%2d deadlines, worst response %v\n",
			cfg.label, met, met+missed, worst)
	}
	fmt.Println("\npaper §5: preemptive priorities are what made robot-arm control")
	fmt.Println("feasible on Meglos and VORX processing nodes.")
}
