// conference: the Rapport multimedia conferencing application the
// paper opens with (§1) — a single application spanning host
// workstations and a processing node, possible because HPC/VORX gives
// the workstations the same high-performance communications as the
// node pool. A mixer on a processing node combines every conferee's
// audio each 64 ms frame and distributes the mix; conferees join and
// leave dynamically.
package main

import (
	"fmt"
	"log"

	"hpcvorx/internal/core"
	"hpcvorx/internal/kern"
	"hpcvorx/internal/rapport"
	"hpcvorx/internal/sim"
)

func main() {
	sys, err := core.Build(core.Config{Hosts: 4, Nodes: 1, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	conf := rapport.New(sys, sys.Node(0), "standup")

	run := func(host int, start sim.Duration, frames int) {
		m := sys.Host(host)
		sys.Spawn(m, fmt.Sprintf("conferee%d", host), 0, func(sp *kern.Subprocess) {
			sp.SleepFor(start)
			mem, err := conf.Join(sp, m)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("[%7.1f ms] %s joins as member %d\n",
				sp.Now().Microseconds()/1000, m.Name(), mem.ID())
			var first, last rapport.Frame
			for f := 0; f < frames; f++ {
				if err := mem.Speak(sp); err != nil {
					log.Fatal(err)
				}
				fr, err := mem.Listen(sp)
				if err != nil {
					log.Fatal(err)
				}
				if f == 0 {
					first = fr
				}
				last = fr
			}
			mem.Leave(sp)
			fmt.Printf("[%7.1f ms] %s leaves (heard mixes %d..%d, last combined %d voices)\n",
				sp.Now().Microseconds()/1000, m.Name(), first.Seq, last.Seq, last.Sources)
		})
	}
	run(0, 0, 30)                   // stays the whole meeting
	run(1, 0, 30)                   // stays the whole meeting
	run(2, 0, 10)                   // leaves early
	run(3, 500*sim.Millisecond, 15) // joins late

	sys.RunFor(sim.Seconds(10))
	sys.Shutdown()
	fmt.Printf("\nconference over: %d mixes produced, peak membership %d\n",
		conf.Mixed, conf.PeakMembers)
	fmt.Println("one application spanning 4 workstations + 1 processing node —")
	fmt.Println("the local area multicomputer capability Rapport was built on (§1).")
}
